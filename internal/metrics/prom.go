package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"incregraph/internal/core"
)

// Prometheus text exposition (format version 0.0.4), hand-written: the
// module is dependency-free by design, so both the writer and the lint that
// CI uses to keep the writer honest live here. The exposition is a pure
// function of one EngineStats snapshot — WritePrometheus does no locking
// and touches no engine state, so serving /metrics never perturbs the hot
// path beyond the Stats() aggregation itself.

// promFloat renders a float the way Prometheus expects ("+Inf", shortest
// round-trip decimal otherwise).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
}

// promHistogramSeries renders one HistogramSnapshot's sample series
// (cumulative le buckets, +Inf overflow, _sum, _count) under an optional
// fixed label prefix like `peer="1",`. The HELP/TYPE header is the
// caller's job, so several labeled series can share one family. scale
// divides the raw power-of-two bucket bounds and the sum: 1e9 turns the
// engine's nanosecond buckets into seconds, 1 keeps byte-bound buckets as
// bytes.
func promHistogramSeries(w io.Writer, name, labels string, h core.HistogramSnapshot, scale float64) {
	var cum uint64
	for i := 0; i < core.HistBuckets-1; i++ {
		cum += h.Buckets[i]
		le := promFloat(float64(core.HistBucketBound(i)) / scale)
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, le, cum)
	}
	cum += h.Buckets[core.HistBuckets-1]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(float64(h.SumNanos)/scale))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, strings.TrimSuffix(labels, ","),
		promFloat(float64(h.SumNanos)/scale))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), cum)
}

// promHistogram renders one unlabeled HistogramSnapshot as a Prometheus
// histogram in seconds (the engine's power-of-two nanosecond buckets,
// bound (2^i - 1) ns).
func promHistogram(w io.Writer, name, help string, h core.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	promHistogramSeries(w, name, "", h, 1e9)
}

// promKind maps an event kind to its label value.
var promKinds = []struct {
	kind core.Kind
	name string
}{
	{core.KindAdd, "add"},
	{core.KindReverseAdd, "reverse_add"},
	{core.KindUpdate, "update"},
	{core.KindInit, "init"},
	{core.KindDelete, "delete"},
	{core.KindReverseDelete, "reverse_delete"},
	{core.KindSignal, "signal"},
	{core.KindInvalidate, "invalidate"},
}

func kindCount(c core.EventCounts, k core.Kind) uint64 {
	switch k {
	case core.KindAdd:
		return c.Adds
	case core.KindReverseAdd:
		return c.ReverseAdds
	case core.KindUpdate:
		return c.Updates
	case core.KindInit:
		return c.Inits
	case core.KindDelete:
		return c.Deletes
	case core.KindReverseDelete:
		return c.ReverseDeletes
	case core.KindSignal:
		return c.Signals
	case core.KindInvalidate:
		return c.Invalidates
	}
	return 0
}

// WritePrometheus renders an EngineStats snapshot in the Prometheus text
// exposition format: run counters, streaming progress/lag gauges, per-rank
// mailbox gauges, and the four latency histograms as cumulative-bucket
// histograms in seconds. The output passes LintProm by construction (a CI
// smoke job and a golden-file test keep that true).
func WritePrometheus(w io.Writer, s core.EngineStats) {
	// Lifecycle + progress gauges.
	fmt.Fprintf(w, "# HELP incregraph_state Engine lifecycle state (1 for the current state).\n")
	fmt.Fprintf(w, "# TYPE incregraph_state gauge\n")
	fmt.Fprintf(w, "incregraph_state{state=%q} 1\n", strings.ToLower(s.State.String()))
	promGauge(w, "incregraph_uptime_seconds",
		"Seconds since Start (0 before Start).", s.Uptime.Seconds())
	promGauge(w, "incregraph_ranks",
		"Configured rank (event-loop goroutine) count.", float64(s.Ranks))

	promCounter(w, "incregraph_ingested_events_total",
		"Topology events pulled from ingestion streams.", s.Ingested)

	fmt.Fprintf(w, "# HELP incregraph_processed_events_total Events processed, by kind.\n")
	fmt.Fprintf(w, "# TYPE incregraph_processed_events_total counter\n")
	for _, k := range promKinds {
		fmt.Fprintf(w, "incregraph_processed_events_total{kind=%q} %d\n",
			k.name, kindCount(s.Events, k.kind))
	}

	// Lag gauges: how far behind the applied state runs the ingested
	// offset, and how much is queued or mid-cascade right now.
	lag := int64(s.Ingested) - int64(s.Events.Topo())
	if lag < 0 {
		lag = 0
	}
	promGauge(w, "incregraph_ingest_lag_events",
		"Ingested-offset minus applied-offset: topology events pulled but not yet processed.",
		float64(lag))
	promGauge(w, "incregraph_inflight_events",
		"Current in-flight ring depth: events buffered, queued, or mid-processing.",
		float64(s.InFlight))
	promGauge(w, "incregraph_mailbox_depth_events",
		"Current total inbound mailbox depth over all ranks (approximate).",
		float64(s.MailboxDepth))

	promCounter(w, "incregraph_messages_sent_total",
		"Events delivered to other ranks' mailboxes.", s.MessagesSent)
	promCounter(w, "incregraph_flushes_total",
		"Outbound batch flushes that carried those messages.", s.Flushes)
	promCounter(w, "incregraph_cascade_emits_total",
		"Events generated by program callbacks and the undirected-edge protocol.", s.CascadeEmits)
	promCounter(w, "incregraph_self_delivered_total",
		"Events routed through the mailbox-bypassing self-delivery ring.", s.SelfDelivered)
	promCounter(w, "incregraph_combined_away_total",
		"UPDATE events eliminated by monotone coalescing before delivery.", s.CombinedAway)
	promCounter(w, "incregraph_batches_drained_total",
		"Non-empty mailbox drains.", s.BatchesDrained)
	promCounter(w, "incregraph_queries_served_total",
		"Local-state observations answered.", s.QueriesServed)
	promCounter(w, "incregraph_snapshots_taken_total",
		"Asynchronous snapshot requests.", s.SnapshotsTaken)

	// Per-rank mailbox gauges (the saturation view: which rank is behind).
	fmt.Fprintf(w, "# HELP incregraph_rank_mailbox_depth_events Current inbound mailbox depth per rank (approximate).\n")
	fmt.Fprintf(w, "# TYPE incregraph_rank_mailbox_depth_events gauge\n")
	for _, r := range s.PerRank {
		fmt.Fprintf(w, "incregraph_rank_mailbox_depth_events{rank=\"%d\"} %d\n", r.Rank, r.MailboxDepth)
	}
	fmt.Fprintf(w, "# HELP incregraph_rank_mailbox_high_water_events Deepest the rank's inbound mailbox has ever been.\n")
	fmt.Fprintf(w, "# TYPE incregraph_rank_mailbox_high_water_events gauge\n")
	for _, r := range s.PerRank {
		fmt.Fprintf(w, "incregraph_rank_mailbox_high_water_events{rank=\"%d\"} %d\n", r.Rank, r.MailboxHWM)
	}

	// Hybrid storage tier + auto-tune controller.
	if s.Storage.Hybrid {
		promCounter(w, "incregraph_compactions_total",
			"Hybrid-tier delta-to-segment merges completed.", s.Storage.Compactions)
		promGauge(w, "incregraph_segment_edges",
			"Edges currently resident in compacted immutable segments.",
			float64(s.Storage.SegmentEdges))
		promCounter(w, "incregraph_segment_clones_total",
			"Copy-on-write segment clones (weight merges and deletes on segment-resident edges).",
			s.Storage.SegClones)
		fmt.Fprintf(w, "# HELP incregraph_adjacency_scanned_total Adjacency entries iterated during neighbor walks, by storage tier.\n")
		fmt.Fprintf(w, "# TYPE incregraph_adjacency_scanned_total counter\n")
		fmt.Fprintf(w, "incregraph_adjacency_scanned_total{tier=\"segment\"} %d\n", s.Storage.SegScanned)
		fmt.Fprintf(w, "incregraph_adjacency_scanned_total{tier=\"delta\"} %d\n", s.Storage.DeltaScanned)
		promGauge(w, "incregraph_delta_hit_rate",
			"Fraction of adjacency-scan traffic served by the mutable delta tier (lower = better locality).",
			s.Storage.DeltaHitRate())
	}
	if s.AutoTune {
		promCounter(w, "incregraph_autotune_adjusts_total",
			"Auto-tune controller decisions that changed a knob.", s.TuneAdjusts)
		fmt.Fprintf(w, "# HELP incregraph_rank_effective_batch_size Effective outbound batch size per rank (auto-tuned).\n")
		fmt.Fprintf(w, "# TYPE incregraph_rank_effective_batch_size gauge\n")
		for _, r := range s.PerRank {
			fmt.Fprintf(w, "incregraph_rank_effective_batch_size{rank=\"%d\"} %d\n", r.Rank, r.EffBatch)
		}
	}

	// Cascade sampler accounting + the latency histograms.
	promGauge(w, "incregraph_trace_sample_every",
		"Cascade sampling stride (one traced cascade per this many ingests per rank; 0 = disabled).",
		float64(s.Latency.SampleEvery))
	promCounter(w, "incregraph_trace_sampled_total",
		"Cascades traced to quiescence.", s.Latency.Sampled)
	promCounter(w, "incregraph_trace_dropped_total",
		"Sampling points skipped because every trace slot was busy.", s.Latency.Dropped)
	promGauge(w, "incregraph_trace_active",
		"Traces currently in flight.", float64(s.Latency.Active))

	// Transport: which update plane is active and — for multi-process
	// runs — the per-peer wire counters the termination protocol compares.
	fmt.Fprintf(w, "# HELP incregraph_transport_info Active transport (the 1-valued series names the kind; node/nodes locate this process).\n")
	fmt.Fprintf(w, "# TYPE incregraph_transport_info gauge\n")
	fmt.Fprintf(w, "incregraph_transport_info{kind=%q,node=\"%d\",nodes=\"%d\"} 1\n",
		s.Transport.Kind, s.Transport.Node, s.Transport.Nodes)
	if len(s.Transport.Peers) > 0 {
		peerCounter := func(name, help string, get func(core.PeerTransportStats) uint64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, p := range s.Transport.Peers {
				fmt.Fprintf(w, "%s{peer=\"%d\"} %d\n", name, p.Node, get(p))
			}
		}
		peerCounter("incregraph_transport_sent_events_total",
			"Engine events shipped to the peer.",
			func(p core.PeerTransportStats) uint64 { return p.SentEvents })
		peerCounter("incregraph_transport_recv_events_total",
			"Engine events received from the peer.",
			func(p core.PeerTransportStats) uint64 { return p.RecvEvents })
		peerCounter("incregraph_transport_acked_events_total",
			"Cumulative receive count the peer last acknowledged.",
			func(p core.PeerTransportStats) uint64 { return p.AckedEvents })
		peerCounter("incregraph_transport_sent_frames_total",
			"Wire frames (event and control) written to the peer.",
			func(p core.PeerTransportStats) uint64 { return p.SentFrames })
		peerCounter("incregraph_transport_recv_frames_total",
			"Wire frames read from the peer.",
			func(p core.PeerTransportStats) uint64 { return p.RecvFrames })
		peerCounter("incregraph_transport_reconnects_total",
			"Dial attempts beyond each connection's first.",
			func(p core.PeerTransportStats) uint64 { return p.Reconnects })
		peerCounter("incregraph_transport_sent_bytes_total",
			"Wire bytes written to the peer (frame headers included).",
			func(p core.PeerTransportStats) uint64 { return p.SentBytes })
		peerCounter("incregraph_transport_recv_bytes_total",
			"Wire bytes read from the peer (frame headers included).",
			func(p core.PeerTransportStats) uint64 { return p.RecvBytes })
		peerCounter("incregraph_transport_backoffs_total",
			"Dial-retry backoff sleeps taken before the peer channel connected.",
			func(p core.PeerTransportStats) uint64 { return p.Backoffs })
		fmt.Fprintf(w, "# HELP incregraph_transport_frame_bytes Outbound wire frame sizes per peer, in bytes.\n")
		fmt.Fprintf(w, "# TYPE incregraph_transport_frame_bytes histogram\n")
		for _, p := range s.Transport.Peers {
			promHistogramSeries(w, "incregraph_transport_frame_bytes",
				fmt.Sprintf("peer=\"%d\",", p.Node), p.FrameBytes, 1)
		}
		fmt.Fprintf(w, "# HELP incregraph_transport_ack_rtt_seconds Event send to credit acknowledgement round trip per peer.\n")
		fmt.Fprintf(w, "# TYPE incregraph_transport_ack_rtt_seconds histogram\n")
		for _, p := range s.Transport.Peers {
			promHistogramSeries(w, "incregraph_transport_ack_rtt_seconds",
				fmt.Sprintf("peer=\"%d\",", p.Node), p.AckRTT, 1e9)
		}
	}

	// Flight recorder + stall watchdog (always present — the ring is
	// armed on every engine, the watchdog only on multi-process ones).
	promCounter(w, "incregraph_flightrec_recorded_total",
		"Protocol-level events the flight recorder has seen (ring keeps the newest incregraph_flightrec_capacity).",
		s.Flight.Recorded)
	promGauge(w, "incregraph_flightrec_capacity",
		"Flight recorder ring capacity (entries retained).", float64(s.Flight.Capacity))
	promCounter(w, "incregraph_stall_watchdog_fires_total",
		"Times the stall watchdog detected no protocol progress past the deadline and dumped state.",
		s.Flight.WatchdogFires)

	// MVCC read plane: epochs, publications, per-verb read counters, and
	// the query latency histograms. Emitted only when the plane is on so
	// ingest-only deployments keep their exposition unchanged.
	if s.Serve.Enabled {
		promGauge(w, "incregraph_serve_epoch",
			"Current read-plane epoch.", float64(s.Serve.Epoch))
		promGauge(w, "incregraph_serve_published_epoch",
			"Minimum epoch across published segments (staleness floor of every read).",
			float64(s.Serve.PublishedEpoch))
		promCounter(w, "incregraph_serve_publishes_total",
			"Full read-plane segment builds.", s.Serve.Publishes)
		promCounter(w, "incregraph_serve_restamps_total",
			"Publications elided because the rank processed nothing since its last segment.",
			s.Serve.Restamps)
		fmt.Fprintf(w, "# HELP incregraph_query_reads_total Read-plane queries served, by verb.\n")
		fmt.Fprintf(w, "# TYPE incregraph_query_reads_total counter\n")
		fmt.Fprintf(w, "incregraph_query_reads_total{verb=\"point\"} %d\n", s.Serve.PointReads)
		fmt.Fprintf(w, "incregraph_query_reads_total{verb=\"batch\"} %d\n", s.Serve.BatchReads)
		fmt.Fprintf(w, "incregraph_query_reads_total{verb=\"topk\"} %d\n", s.Serve.TopKReads)
		fmt.Fprintf(w, "incregraph_query_reads_total{verb=\"neighborhood\"} %d\n", s.Serve.NbhdReads)
		promCounter(w, "incregraph_query_read_vertices_total",
			"Vertices returned across all read-plane queries.", s.Serve.ReadVertices)
		promHistogram(w, "incregraph_query_point_seconds",
			"Read-plane point lookups: request to value (sampled).", s.Latency.QueryPoint)
		promHistogram(w, "incregraph_query_batch_seconds",
			"Read-plane batch lookups: request to last value (sampled).", s.Latency.QueryBatch)
		promHistogram(w, "incregraph_query_topk_seconds",
			"Read-plane top-k scans (sampled).", s.Latency.QueryTopK)
		promHistogram(w, "incregraph_query_neighborhood_seconds",
			"Read-plane k-hop neighborhood reads (sampled).", s.Latency.QueryNbhd)
	}

	promHistogram(w, "incregraph_ingest_to_quiesce_seconds",
		"Sampled edge events: stream pull to cascade quiescence.", s.Latency.IngestToQuiesce)
	promHistogram(w, "incregraph_mailbox_residency_seconds",
		"Inbound batches: producer push to consumer drain (sampled).", s.Latency.MailboxResidency)
	promHistogram(w, "incregraph_batch_drain_seconds",
		"Processing time of one drained mailbox batch (sampled).", s.Latency.BatchDrain)
	promHistogram(w, "incregraph_flush_interval_seconds",
		"Interval between consecutive outbound flushes of a rank.", s.Latency.FlushInterval)
}

// WriteClusterPrometheus renders a federated cluster view: one sample per
// process for each incregraph_cluster_* family, labeled by the process's
// node index (and peer, for the cross-node transport counters). The input
// is a ClusterStats result — the coordinator's snapshot plus every peer
// snapshot that answered the stats poll; absent peers simply have no
// samples. Like WritePrometheus, the output passes LintProm by
// construction.
func WriteClusterPrometheus(w io.Writer, cluster []core.NodeEngineStats) {
	nodeGauge := func(name, help string, get func(core.EngineStats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, n := range cluster {
			fmt.Fprintf(w, "%s{node=\"%d\"} %s\n", name, n.Node, promFloat(get(n.Stats)))
		}
	}
	nodeCounter := func(name, help string, get func(core.EngineStats) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, n := range cluster {
			fmt.Fprintf(w, "%s{node=\"%d\"} %d\n", name, n.Node, get(n.Stats))
		}
	}
	peerCounter := func(name, help string, get func(core.PeerTransportStats) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, n := range cluster {
			for _, p := range n.Stats.Transport.Peers {
				fmt.Fprintf(w, "%s{node=\"%d\",peer=\"%d\"} %d\n", name, n.Node, p.Node, get(p))
			}
		}
	}

	fmt.Fprintf(w, "# HELP incregraph_cluster_nodes Processes that answered the federated stats poll.\n")
	fmt.Fprintf(w, "# TYPE incregraph_cluster_nodes gauge\n")
	fmt.Fprintf(w, "incregraph_cluster_nodes %d\n", len(cluster))
	fmt.Fprintf(w, "# HELP incregraph_cluster_node_info Per-process identity (the 1-valued series carries state and transport kind).\n")
	fmt.Fprintf(w, "# TYPE incregraph_cluster_node_info gauge\n")
	for _, n := range cluster {
		fmt.Fprintf(w, "incregraph_cluster_node_info{node=\"%d\",state=%q,kind=%q} 1\n",
			n.Node, strings.ToLower(n.Stats.State.String()), n.Stats.Transport.Kind)
	}

	nodeGauge("incregraph_cluster_uptime_seconds",
		"Seconds since the process's Start.",
		func(s core.EngineStats) float64 { return s.Uptime.Seconds() })
	nodeGauge("incregraph_cluster_ranks",
		"Ranks hosted by the process.",
		func(s core.EngineStats) float64 { return float64(s.Ranks) })
	nodeCounter("incregraph_cluster_ingested_events_total",
		"Topology events the process pulled from its ingestion streams.",
		func(s core.EngineStats) uint64 { return s.Ingested })

	fmt.Fprintf(w, "# HELP incregraph_cluster_processed_events_total Events processed per process, by kind.\n")
	fmt.Fprintf(w, "# TYPE incregraph_cluster_processed_events_total counter\n")
	for _, n := range cluster {
		for _, k := range promKinds {
			fmt.Fprintf(w, "incregraph_cluster_processed_events_total{node=\"%d\",kind=%q} %d\n",
				n.Node, k.name, kindCount(n.Stats.Events, k.kind))
		}
	}

	nodeCounter("incregraph_cluster_messages_sent_total",
		"Events the process delivered to other ranks' mailboxes (local and remote).",
		func(s core.EngineStats) uint64 { return s.MessagesSent })
	nodeCounter("incregraph_cluster_queries_served_total",
		"Local-state observations the process answered.",
		func(s core.EngineStats) uint64 { return s.QueriesServed })
	nodeGauge("incregraph_cluster_inflight_events",
		"Current in-flight ring depth on the process.",
		func(s core.EngineStats) float64 { return float64(s.InFlight) })
	nodeGauge("incregraph_cluster_mailbox_depth_events",
		"Current total inbound mailbox depth over the process's ranks (approximate).",
		func(s core.EngineStats) float64 { return float64(s.MailboxDepth) })
	nodeCounter("incregraph_cluster_trace_sampled_total",
		"Cascades the process's lineage sampler traced to quiescence.",
		func(s core.EngineStats) uint64 { return s.Latency.Sampled })

	peerCounter("incregraph_cluster_transport_sent_events_total",
		"Engine events shipped node to peer.",
		func(p core.PeerTransportStats) uint64 { return p.SentEvents })
	peerCounter("incregraph_cluster_transport_recv_events_total",
		"Engine events received node from peer.",
		func(p core.PeerTransportStats) uint64 { return p.RecvEvents })
	peerCounter("incregraph_cluster_transport_sent_bytes_total",
		"Wire bytes written node to peer (frame headers included).",
		func(p core.PeerTransportStats) uint64 { return p.SentBytes })
	peerCounter("incregraph_cluster_transport_recv_bytes_total",
		"Wire bytes read node from peer (frame headers included).",
		func(p core.PeerTransportStats) uint64 { return p.RecvBytes })
	peerCounter("incregraph_cluster_transport_reconnects_total",
		"Dial attempts beyond each peer connection's first.",
		func(p core.PeerTransportStats) uint64 { return p.Reconnects })

	nodeCounter("incregraph_cluster_flightrec_recorded_total",
		"Protocol-level events the process's flight recorder has seen.",
		func(s core.EngineStats) uint64 { return s.Flight.Recorded })
	nodeCounter("incregraph_cluster_stall_watchdog_fires_total",
		"Stall-watchdog fires on the process.",
		func(s core.EngineStats) uint64 { return s.Flight.WatchdogFires })
}

// LintProm validates Prometheus text exposition data: comment/metadata
// syntax, metric and label name grammar, parseable sample values, TYPE
// consistency (samples of a typed family must match its declared shape),
// and histogram integrity (bucket counts cumulative and non-decreasing in
// le order, a +Inf bucket present and equal to _count). It is the repo's
// stand-in for an external exposition-format parser and is what the CI
// metrics smoke job runs against a live /metrics body.
func LintProm(data []byte) error {
	types := map[string]string{}
	declared := map[string]bool{} // HELP or TYPE seen (at most once each)
	helped := map[string]bool{}
	type sample struct {
		labels map[string]string
		value  float64
	}
	samples := map[string][]sample{}

	for i, line := range strings.Split(string(data), "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			if rest == line {
				continue // free-form comment
			}
			fields := strings.SplitN(rest, " ", 3)
			if len(fields) < 2 {
				return fmt.Errorf("line %d: malformed metadata comment", ln)
			}
			switch fields[0] {
			case "HELP":
				if !validMetricName(fields[1]) {
					return fmt.Errorf("line %d: bad metric name %q in HELP", ln, fields[1])
				}
				if helped[fields[1]] {
					return fmt.Errorf("line %d: duplicate HELP for %s", ln, fields[1])
				}
				helped[fields[1]] = true
				declared[fields[1]] = true
			case "TYPE":
				if len(fields) != 3 {
					return fmt.Errorf("line %d: TYPE needs a metric name and a type", ln)
				}
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", ln, fields[2])
				}
				if !validMetricName(fields[1]) {
					return fmt.Errorf("line %d: bad metric name %q in TYPE", ln, fields[1])
				}
				if _, dup := types[fields[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", ln, fields[1])
				}
				if len(samples[fields[1]]) > 0 {
					return fmt.Errorf("line %d: TYPE for %s after its samples", ln, fields[1])
				}
				types[fields[1]] = fields[2]
			default:
				// Any other comment form is legal and ignored.
			}
			continue
		}
		name, labels, valueStr, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		v, err := parsePromValue(valueStr)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", ln, valueStr, err)
		}
		base := promBase(name, types)
		if t, typed := types[base]; typed {
			switch t {
			case "counter":
				if v < 0 {
					return fmt.Errorf("line %d: counter %s has negative value", ln, name)
				}
				if name != base {
					return fmt.Errorf("line %d: counter sample %s does not match family %s", ln, name, base)
				}
			case "histogram":
				switch {
				case name == base+"_bucket":
					if _, ok := labels["le"]; !ok {
						return fmt.Errorf("line %d: histogram bucket %s without le label", ln, name)
					}
				case name == base+"_sum", name == base+"_count":
				default:
					return fmt.Errorf("line %d: sample %s does not fit histogram family %s", ln, name, base)
				}
			}
		}
		samples[name] = append(samples[name], sample{labels: labels, value: v})
	}

	// Histogram integrity, per family.
	for fam, t := range types {
		if t != "histogram" {
			continue
		}
		buckets := samples[fam+"_bucket"]
		if len(buckets) == 0 {
			return fmt.Errorf("histogram %s has no buckets", fam)
		}
		// Group by the label set minus le (this exposition has none, but
		// stay general).
		groups := map[string][]sample{}
		for _, b := range buckets {
			key := labelKey(b.labels, "le")
			groups[key] = append(groups[key], b)
		}
		counts := samples[fam+"_count"]
		if len(samples[fam+"_sum"]) == 0 || len(counts) == 0 {
			return fmt.Errorf("histogram %s missing _sum or _count", fam)
		}
		for key, g := range groups {
			sort.Slice(g, func(i, j int) bool {
				li, _ := parsePromValue(g[i].labels["le"])
				lj, _ := parsePromValue(g[j].labels["le"])
				return li < lj
			})
			var prev float64 = -1
			var inf bool
			var infVal float64
			for _, b := range g {
				le, err := parsePromValue(b.labels["le"])
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", fam, b.labels["le"])
				}
				if b.value < prev {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative at le=%q",
						fam, key, b.labels["le"])
				}
				prev = b.value
				if math.IsInf(le, 1) {
					inf, infVal = true, b.value
				}
			}
			if !inf {
				return fmt.Errorf("histogram %s{%s}: no +Inf bucket", fam, key)
			}
			for _, c := range counts {
				if labelKey(c.labels, "le") == key && c.value != infVal {
					return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v",
						fam, key, c.value, infVal)
				}
			}
		}
	}
	return nil
}

// labelKey serializes a label set (minus one skipped label) into a stable
// grouping key.
func labelKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// promBase strips a histogram sample suffix back to its declared family
// name, if that family is typed as a histogram.
func promBase(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromValue parses a sample or le value, accepting the exposition
// format's infinity spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromSample splits one sample line into name, labels, and the value
// string (a trailing timestamp is accepted and discarded).
func parsePromSample(line string) (name string, labels map[string]string, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		rest = rest[brace+1:]
		labels, rest, err = parsePromLabels(rest)
		if err != nil {
			return "", nil, "", err
		}
	} else {
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample line without value")
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("expected value [timestamp], got %q", strings.TrimSpace(rest))
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// parsePromLabels parses `name="value",...}` (the caller consumed the
// opening brace) and returns the remainder after the closing brace.
func parsePromLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("bad label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label value for %q not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated label value for %q", lname)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("dangling escape in label value for %q", lname)
				}
				e := s[0]
				s = s[1:]
				switch e {
				case '\\', '"':
					val.WriteByte(e)
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label value for %q", e, lname)
				}
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %q", lname)
	}
}
