package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incregraph/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedStats hand-builds a fully deterministic EngineStats snapshot — no
// clocks, no engine — so the golden exposition is byte-stable.
func fixedStats() core.EngineStats {
	hist := func(buckets map[int]uint64, sumNanos uint64) core.HistogramSnapshot {
		var h core.HistogramSnapshot
		for i, n := range buckets {
			h.Buckets[i] = n
			h.Count += n
		}
		h.SumNanos = sumNanos
		return h
	}
	s := core.EngineStats{
		State:    core.StateRunning,
		Uptime:   1500 * time.Millisecond,
		Ranks:    2,
		Ingested: 1000,
		Events: core.EventCounts{
			Adds: 1000, ReverseAdds: 1000, Updates: 420, Inits: 1, Signals: 2,
		},
		MessagesSent:   300,
		Flushes:        60,
		CascadeEmits:   1422,
		SelfDelivered:  1100,
		CombinedAway:   77,
		BatchesDrained: 58,
		MailboxHWM:     12,
		MailboxDepth:   3,
		InFlight:       5,
		QueriesServed:  9,
		SnapshotsTaken: 1,
		Latency: core.LatencyStats{
			SampleEvery: 1024,
			Sampled:     4,
			Dropped:     1,
			Active:      2,
			// 4 samples: ~1µs, ~2µs, ~16µs, and one beyond the top bucket.
			IngestToQuiesce:  hist(map[int]uint64{10: 1, 11: 1, 14: 1, core.HistBuckets - 1: 1}, 20000),
			MailboxResidency: hist(map[int]uint64{9: 2, 12: 1}, 6000),
			BatchDrain:       hist(map[int]uint64{13: 3}, 18000),
			FlushInterval:    hist(nil, 0), // a family with zero observations still renders
			QueryPoint:       hist(map[int]uint64{8: 3, 10: 1}, 5000),
			QueryBatch:       hist(map[int]uint64{12: 2}, 9000),
			QueryTopK:        hist(map[int]uint64{13: 1}, 7000),
			QueryNbhd:        hist(nil, 0),
		},
		Serve: core.ServeStats{
			Enabled: true, Epoch: 12, PublishedEpoch: 11, Publishes: 20, Restamps: 4,
			PointReads: 500, BatchReads: 30, TopKReads: 7, NbhdReads: 3, ReadVertices: 1200,
		},
		Storage: core.StorageStats{
			Hybrid: true, Compactions: 15, SegmentEdges: 900,
			SegClones: 6, SegScanned: 4000, DeltaScanned: 1000,
		},
		AutoTune:    true,
		TuneAdjusts: 3,
	}
	s.PerRank = []core.RankEngineStats{
		{Rank: 0, MailboxHWM: 12, MailboxDepth: 3, EffBatch: 128},
		{Rank: 1, MailboxHWM: 7, MailboxDepth: 0, EffBatch: 256},
	}
	s.Transport = core.TransportStats{
		Kind: "tcp", Node: 0, Nodes: 2,
		Peers: []core.PeerTransportStats{{
			Node: 1, SentEvents: 250, RecvEvents: 240, AckedEvents: 250,
			SentFrames: 12, RecvFrames: 11, Reconnects: 1, Backoffs: 2,
			SentBytes: 11500, RecvBytes: 11000,
			// Frame sizes ~512B and ~4KiB; ack RTTs ~131µs and ~1ms.
			FrameBytes: hist(map[int]uint64{9: 8, 12: 4}, 20480),
			AckRTT:     hist(map[int]uint64{17: 9, 20: 3}, 4300000),
		}},
	}
	s.Flight = core.FlightStats{
		Recorded: 77, Capacity: 256, WatchdogFires: 1, LastStallUnixNanos: 1700000000000000000,
	}
	return s
}

// fixedClusterStats is the deterministic two-process federation fixture:
// the coordinator's fixedStats plus a follower whose counters differ
// enough that every node-labeled family shows both series.
func fixedClusterStats() []core.NodeEngineStats {
	n0 := fixedStats()
	n1 := fixedStats()
	n1.Uptime = 1400 * time.Millisecond
	n1.Ingested = 0 // followers pull no streams
	n1.Events = core.EventCounts{Adds: 400, ReverseAdds: 400, Updates: 180, Signals: 1}
	n1.MessagesSent = 260
	n1.QueriesServed = 0
	n1.InFlight = 2
	n1.MailboxDepth = 1
	n1.Latency.Sampled = 0
	n1.Transport.Node = 1
	n1.Transport.Peers = []core.PeerTransportStats{{
		Node: 0, SentEvents: 240, RecvEvents: 250, AckedEvents: 240,
		SentFrames: 11, RecvFrames: 12, Reconnects: 0, Backoffs: 1,
		SentBytes: 11000, RecvBytes: 11500,
	}}
	n1.Flight = core.FlightStats{Recorded: 70, Capacity: 256}
	return []core.NodeEngineStats{{Node: 0, Stats: n0}, {Node: 1, Stats: n1}}
}

// TestWritePrometheusGolden pins the full exposition byte-for-byte; the
// golden file is also what a human reads to see the metric contract.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, fixedStats())

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestWriteClusterPrometheusGolden pins the federated exposition the same
// way — the cluster golden is the contract /cluster/metrics serves.
func TestWriteClusterPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteClusterPrometheus(&buf, fixedClusterStats())

	golden := filepath.Join("testdata", "cluster_metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("cluster exposition drifted from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestWriteClusterPrometheusLints keeps the federated writer honest against
// the same lint the per-process exposition passes, including the degenerate
// inputs /cluster/metrics can serve: an empty poll result and a
// single-process cluster.
func TestWriteClusterPrometheusLints(t *testing.T) {
	for _, cs := range [][]core.NodeEngineStats{
		fixedClusterStats(),
		{{Node: 0, Stats: fixedStats()}},
		nil,
	} {
		var buf bytes.Buffer
		WriteClusterPrometheus(&buf, cs)
		if err := LintProm(buf.Bytes()); err != nil {
			t.Fatalf("cluster writer output fails lint for %d nodes: %v", len(cs), err)
		}
	}
}

// TestWritePrometheusLints feeds the writer's own output through the lint —
// the same check the CI metrics smoke job performs against a live /metrics.
func TestWritePrometheusLints(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, fixedStats())
	if err := LintProm(buf.Bytes()); err != nil {
		t.Fatalf("writer output fails lint: %v", err)
	}
	// A zeroed snapshot (engine never started) must also be well-formed.
	buf.Reset()
	WritePrometheus(&buf, core.EngineStats{})
	if err := LintProm(buf.Bytes()); err != nil {
		t.Fatalf("zero-stats output fails lint: %v", err)
	}
}

func TestLintPromRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			"bad metric name",
			"2foo 1\n",
			"bad metric name",
		},
		{
			"bad label name",
			"foo{2x=\"y\"} 1\n",
			"bad label name",
		},
		{
			"unparseable value",
			"foo abc\n",
			"bad value",
		},
		{
			"duplicate TYPE",
			"# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
			"duplicate TYPE",
		},
		{
			"unknown type",
			"# TYPE foo tally\nfoo 1\n",
			"unknown metric type",
		},
		{
			"negative counter",
			"# TYPE foo counter\nfoo -1\n",
			"negative value",
		},
		{
			"TYPE after samples",
			"foo 1\n# TYPE foo counter\n",
			"after its samples",
		},
		{
			"histogram without buckets",
			"# TYPE foo histogram\nfoo_sum 1\nfoo_count 1\n",
			"no buckets",
		},
		{
			"histogram missing +Inf",
			"# TYPE foo histogram\nfoo_bucket{le=\"1\"} 1\nfoo_sum 1\nfoo_count 1\n",
			"no +Inf bucket",
		},
		{
			"non-cumulative buckets",
			"# TYPE foo histogram\nfoo_bucket{le=\"1\"} 5\nfoo_bucket{le=\"2\"} 3\nfoo_bucket{le=\"+Inf\"} 5\nfoo_sum 1\nfoo_count 5\n",
			"not cumulative",
		},
		{
			"count disagrees with +Inf",
			"# TYPE foo histogram\nfoo_bucket{le=\"1\"} 1\nfoo_bucket{le=\"+Inf\"} 2\nfoo_sum 1\nfoo_count 3\n",
			"_count",
		},
		{
			"bucket without le",
			"# TYPE foo histogram\nfoo_bucket{x=\"1\"} 1\n",
			"without le label",
		},
		{
			"unterminated labels",
			"foo{le=\"1\" 1\n",
			"",
		},
		{
			"duplicate label",
			"foo{a=\"1\",a=\"2\"} 1\n",
			"duplicate label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintProm([]byte(tc.in))
			if err == nil {
				t.Fatalf("LintProm accepted malformed input:\n%s", tc.in)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLintPromAcceptsValidCorners(t *testing.T) {
	valid := []string{
		"",                               // empty exposition
		"foo 1 1712345678901\n",          // trailing timestamp
		"# just a comment\nfoo 1\n",      // free-form comment
		"foo{a=\"x\\\\y\\\"z\\n\"} 1\n",  // escaped label value
		"foo{} 1\n",                      // empty label set
		"# TYPE foo gauge\nfoo +Inf\n",   // infinity value
		"# TYPE foo untyped\nfoo -3.5\n", // untyped negative
	}
	for _, in := range valid {
		if err := LintProm([]byte(in)); err != nil {
			t.Errorf("LintProm rejected valid exposition %q: %v", in, err)
		}
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		1e-9:    "1e-09",
		2047e-9: "2.047e-06",
	}
	for in, want := range cases {
		if got := promFloat(in); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
