// Package metrics provides the small measurement helpers the benchmark
// harness uses: wall-clock timers, event-rate accounting, and summary
// statistics for latency samples.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Timer measures wall-clock durations.
type Timer struct {
	start time.Time
}

// StartTimer returns a running timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Rate converts an event count and duration into events per second.
func Rate(events uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(events) / d.Seconds()
}

// HumanRate formats an events-per-second figure the way the paper reports
// them (e.g. "1.3B ev/s", "400M ev/s").
func HumanRate(r float64) string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2fB ev/s", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.1fM ev/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fK ev/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f ev/s", r)
	}
}

// HumanCount formats large counts (vertices, edges).
func HumanCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// HumanBytes formats a byte size.
func HumanBytes(n uint64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1f TB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Summary aggregates a set of duration samples.
type Summary struct {
	N             int
	Min, Max      time.Duration
	Mean          time.Duration
	P50, P95, P99 time.Duration
}

// Summarize computes order statistics over samples (which it sorts a copy
// of). An empty input yields a zero Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(s)-1))
		return s[idx]
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: sum / time.Duration(len(s)),
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
	}
}

func (s Summary) String() string {
	if s.N == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d min=%s p50=%s p95=%s p99=%s max=%s mean=%s",
		s.N, s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond), s.Mean.Round(time.Microsecond))
}
