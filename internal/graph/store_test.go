package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEnsureVertex(t *testing.T) {
	s := NewStore(0)
	slot, created := s.EnsureVertex(42)
	if !created || slot != 0 {
		t.Fatalf("EnsureVertex(42) = %d,%v want 0,true", slot, created)
	}
	slot2, created2 := s.EnsureVertex(42)
	if created2 || slot2 != slot {
		t.Fatalf("second EnsureVertex(42) = %d,%v", slot2, created2)
	}
	if s.IDOf(slot) != 42 {
		t.Fatalf("IDOf(%d) = %d", slot, s.IDOf(slot))
	}
	if s.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d", s.NumVertices())
	}
	if _, ok := s.SlotOf(7); ok {
		t.Fatal("SlotOf(7) should miss")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	s := NewStore(0)
	srcSlot, srcCreated, isNew := s.AddEdge(1, 2, 5, 0)
	if !isNew || !srcCreated {
		t.Fatalf("first AddEdge: isNew=%v srcCreated=%v", isNew, srcCreated)
	}
	if s.IDOf(srcSlot) != 1 {
		t.Fatal("slot maps to wrong ID")
	}
	// Only the source vertex materializes in this shard; the destination
	// lives in its owner's shard.
	if s.NumEdges() != 1 || s.NumVertices() != 1 {
		t.Fatalf("E=%d V=%d", s.NumEdges(), s.NumVertices())
	}
	if _, ok := s.SlotOf(2); ok {
		t.Fatal("destination vertex should not be created by AddEdge")
	}
	if w, ok := s.EdgeWeight(srcSlot, 2); !ok || w != 5 {
		t.Fatalf("EdgeWeight = %d,%v", w, ok)
	}
	if !s.HasEdge(1, 2) || s.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong: store is directed")
	}
	if s.Degree(srcSlot) != 1 {
		t.Fatal("degree wrong")
	}
	_, srcCreated2, _ := s.AddEdge(1, 3, 1, 0)
	if srcCreated2 {
		t.Fatal("existing source reported as created")
	}
}

func TestAddEdgeDuplicateLowersWeight(t *testing.T) {
	s := NewStore(0)
	s.AddEdge(1, 2, 5, 0)
	_, _, isNew := s.AddEdge(1, 2, 9, 0)
	if isNew {
		t.Fatal("duplicate edge reported as new")
	}
	slot, _ := s.SlotOf(1)
	if w, _ := s.EdgeWeight(slot, 2); w != 5 {
		t.Fatalf("weight raised to %d; duplicates must only lower", w)
	}
	s.AddEdge(1, 2, 3, 0)
	if w, _ := s.EdgeWeight(slot, 2); w != 3 {
		t.Fatalf("weight = %d, want lowered to 3", w)
	}
	if s.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after duplicates", s.NumEdges())
	}
}

// TestAddEdgeDuplicateLowersSeq: a duplicate insertion with an earlier
// snapshot sequence must lower the stored stamp — a parallel edge ingested
// before a marker belongs to the previous version even when a post-marker
// duplicate raced ahead, and NeighborsBefore must be able to traverse it.
func TestAddEdgeDuplicateLowersSeq(t *testing.T) {
	for _, promote := range []bool{false, true} {
		s := NewStore(0)
		if promote {
			// Force the Robin Hood representation for vertex 1.
			for n := VertexID(10); n < 30; n++ {
				s.AddEdge(1, n, 1, 2)
			}
		}
		s.AddEdge(1, 2, 5, 1) // post-marker duplicate arrives first
		s.AddEdge(1, 2, 5, 0) // pre-marker original
		slot, _ := s.SlotOf(1)
		seen := false
		s.NeighborsBefore(slot, 1, func(nbr VertexID, w Weight) bool {
			if nbr == 2 {
				seen = true
			}
			return true
		})
		if !seen {
			t.Fatalf("promote=%v: pre-marker duplicate left edge stamped post-marker", promote)
		}
		// A later duplicate must never raise the stamp back.
		s.AddEdge(1, 2, 5, 3)
		seen = false
		s.NeighborsBefore(slot, 1, func(nbr VertexID, w Weight) bool {
			if nbr == 2 {
				seen = true
			}
			return true
		})
		if !seen {
			t.Fatalf("promote=%v: later duplicate raised the stamp", promote)
		}
	}
}

func TestWeightPolicies(t *testing.T) {
	cases := []struct {
		policy  WeightPolicy
		weights []Weight
		want    Weight
	}{
		{WeightMin, []Weight{5, 9, 3, 7}, 3},
		{WeightMax, []Weight{5, 9, 3, 7}, 9},
		{WeightFirst, []Weight{5, 9, 3, 7}, 5},
	}
	for _, tc := range cases {
		for _, smallCap := range []int{1, 64} { // both representations
			s := NewStore(smallCap)
			s.SetWeightPolicy(tc.policy)
			if smallCap == 1 {
				// Force promotion so the duplicate lands in the RHH path.
				s.AddEdge(1, 99, 1, 0)
			}
			for _, w := range tc.weights {
				s.AddEdge(1, 2, w, 0)
			}
			slot, _ := s.SlotOf(1)
			if got, _ := s.EdgeWeight(slot, 2); got != tc.want {
				t.Fatalf("policy %d smallCap %d: weight %d want %d", tc.policy, smallCap, got, tc.want)
			}
			// Duplicates never change the edge count.
			wantEdges := uint64(1)
			if smallCap == 1 {
				wantEdges = 2 // includes the forced-promotion edge
			}
			if s.NumEdges() != wantEdges {
				t.Fatalf("policy %d smallCap %d: edges %d want %d", tc.policy, smallCap, s.NumEdges(), wantEdges)
			}
		}
	}
}

func TestSelfLoop(t *testing.T) {
	s := NewStore(0)
	_, _, isNew := s.AddEdge(3, 3, 1, 0)
	if !isNew {
		t.Fatal("self loop rejected")
	}
	if s.NumVertices() != 1 || s.NumEdges() != 1 {
		t.Fatalf("V=%d E=%d", s.NumVertices(), s.NumEdges())
	}
}

func TestPromotion(t *testing.T) {
	s := NewStore(4)
	for i := VertexID(1); i <= 10; i++ {
		s.AddEdge(0, i, Weight(i), 0)
	}
	if s.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", s.Promotions())
	}
	slot, _ := s.SlotOf(0)
	if s.Degree(slot) != 10 {
		t.Fatalf("degree = %d", s.Degree(slot))
	}
	// All edges survive promotion, with weights intact.
	for i := VertexID(1); i <= 10; i++ {
		w, ok := s.EdgeWeight(slot, i)
		if !ok || w != Weight(i) {
			t.Fatalf("EdgeWeight(0,%d) = %d,%v after promotion", i, w, ok)
		}
	}
	// Duplicate handling still works post-promotion.
	_, _, isNew := s.AddEdge(0, 5, 100, 0)
	if isNew {
		t.Fatal("duplicate after promotion reported new")
	}
	if w, _ := s.EdgeWeight(slot, 5); w != 5 {
		t.Fatalf("post-promotion duplicate changed weight to %d", w)
	}
}

func TestNeighborsSmallAndLarge(t *testing.T) {
	for _, smallCap := range []int{2, 64} {
		s := NewStore(smallCap)
		want := map[VertexID]Weight{}
		for i := VertexID(1); i <= 20; i++ {
			s.AddEdge(0, i, Weight(i*2), 0)
			want[i] = Weight(i * 2)
		}
		slot, _ := s.SlotOf(0)
		got := map[VertexID]Weight{}
		s.Neighbors(slot, func(nbr VertexID, w Weight) bool {
			got[nbr] = w
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("smallCap=%d: %d neighbours, want %d", smallCap, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("smallCap=%d: nbr %d weight %d want %d", smallCap, k, got[k], v)
			}
		}
		// Early stop.
		n := 0
		s.Neighbors(slot, func(VertexID, Weight) bool { n++; return false })
		if n != 1 {
			t.Fatalf("early stop visited %d", n)
		}
	}
}

func TestNeighborsBefore(t *testing.T) {
	for _, smallCap := range []int{2, 64} {
		s := NewStore(smallCap)
		for i := VertexID(1); i <= 5; i++ {
			s.AddEdge(0, i, 1, 0) // epoch 0
		}
		for i := VertexID(6); i <= 12; i++ {
			s.AddEdge(0, i, 1, 1) // epoch 1
		}
		slot, _ := s.SlotOf(0)
		var old []VertexID
		s.NeighborsBefore(slot, 1, func(nbr VertexID, _ Weight) bool {
			old = append(old, nbr)
			return true
		})
		sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })
		if len(old) != 5 {
			t.Fatalf("smallCap=%d: NeighborsBefore saw %d edges, want 5", smallCap, len(old))
		}
		for i, v := range old {
			if v != VertexID(i+1) {
				t.Fatalf("smallCap=%d: old edge set %v", smallCap, old)
			}
		}
		// seq 2 sees everything.
		count := 0
		s.NeighborsBefore(slot, 2, func(VertexID, Weight) bool { count++; return true })
		if count != 12 {
			t.Fatalf("NeighborsBefore(2) = %d edges, want 12", count)
		}
	}
}

func TestDeleteEdge(t *testing.T) {
	for _, smallCap := range []int{2, 64} {
		s := NewStore(smallCap)
		for i := VertexID(1); i <= 8; i++ {
			s.AddEdge(0, i, 1, 0)
		}
		if !s.DeleteEdge(0, 4) {
			t.Fatal("DeleteEdge(0,4) failed")
		}
		if s.DeleteEdge(0, 4) {
			t.Fatal("double delete succeeded")
		}
		if s.DeleteEdge(99, 1) {
			t.Fatal("delete from unknown vertex succeeded")
		}
		if s.HasEdge(0, 4) {
			t.Fatal("edge still present")
		}
		if s.NumEdges() != 7 {
			t.Fatalf("NumEdges = %d", s.NumEdges())
		}
		slot, _ := s.SlotOf(0)
		if s.Degree(slot) != 7 {
			t.Fatalf("degree = %d", s.Degree(slot))
		}
	}
}

func TestForEachVertex(t *testing.T) {
	s := NewStore(0)
	for _, v := range []VertexID{10, 20, 30} {
		s.EnsureVertex(v)
	}
	var ids []VertexID
	s.ForEachVertex(func(slot Slot, id VertexID) bool {
		if s.IDOf(slot) != id {
			t.Fatalf("slot %d id mismatch", slot)
		}
		ids = append(ids, id)
		return true
	})
	if len(ids) != 3 || ids[0] != 10 || ids[1] != 20 || ids[2] != 30 {
		t.Fatalf("ForEachVertex order = %v (slot order expected)", ids)
	}
}

func TestComputeStats(t *testing.T) {
	s := NewStore(2)
	s.EnsureVertex(100) // singleton
	for i := VertexID(1); i <= 5; i++ {
		s.AddEdge(0, i, 1, 0)
	}
	st := s.ComputeStats()
	// Only explicitly-ensured vertices and edge sources materialize:
	// vertex 100 (singleton) and vertex 0 (degree 5, promoted past cap 2).
	if st.Vertices != 2 || st.Edges != 5 || st.MaxDegree != 5 || st.Promoted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Singletons != 1 {
		t.Fatalf("singletons = %d", st.Singletons)
	}
}

// Model check: random add/delete/query sequence against map-of-maps.
func TestStoreModelCheck(t *testing.T) {
	s := NewStore(3) // tiny cap exercises promotions heavily
	model := map[VertexID]map[VertexID]Weight{}
	rng := rand.New(rand.NewSource(11))
	var edgeCount uint64
	for op := 0; op < 100000; op++ {
		src := VertexID(rng.Intn(50))
		dst := VertexID(rng.Intn(50))
		switch rng.Intn(4) {
		case 0, 1: // add
			w := Weight(rng.Intn(100) + 1)
			_, _, isNew := s.AddEdge(src, dst, w, 0)
			if model[src] == nil {
				model[src] = map[VertexID]Weight{}
			}
			old, existed := model[src][dst]
			if isNew == existed {
				t.Fatalf("op %d: isNew=%v existed=%v", op, isNew, existed)
			}
			if !existed {
				model[src][dst] = w
				edgeCount++
			} else if w < old {
				model[src][dst] = w
			}
		case 2: // delete
			got := s.DeleteEdge(src, dst)
			_, want := model[src][dst]
			if got != want {
				t.Fatalf("op %d: DeleteEdge = %v want %v", op, got, want)
			}
			if want {
				delete(model[src], dst)
				edgeCount--
			}
		case 3: // query
			slot, ok := s.SlotOf(src)
			if !ok {
				if len(model[src]) != 0 {
					t.Fatalf("op %d: vertex %d missing", op, src)
				}
				continue
			}
			w, ok := s.EdgeWeight(slot, dst)
			want, wok := model[src][dst]
			if ok != wok || (ok && w != want) {
				t.Fatalf("op %d: weight(%d,%d) = %d,%v want %d,%v", op, src, dst, w, ok, want, wok)
			}
		}
		if s.NumEdges() != edgeCount {
			t.Fatalf("op %d: NumEdges = %d want %d", op, s.NumEdges(), edgeCount)
		}
	}
}

// Property: any batch of edges is fully retrievable via Neighbors.
func TestQuickNeighborsComplete(t *testing.T) {
	f := func(pairs []struct{ S, D uint8 }) bool {
		s := NewStore(4)
		model := map[VertexID]map[VertexID]bool{}
		for _, p := range pairs {
			src, dst := VertexID(p.S), VertexID(p.D)
			s.AddEdge(src, dst, 1, 0)
			if model[src] == nil {
				model[src] = map[VertexID]bool{}
			}
			model[src][dst] = true
		}
		for src, nbrs := range model {
			slot, ok := s.SlotOf(src)
			if !ok {
				return false
			}
			seen := map[VertexID]bool{}
			s.Neighbors(slot, func(n VertexID, _ Weight) bool {
				seen[n] = true
				return true
			})
			if len(seen) != len(nbrs) {
				return false
			}
			for n := range nbrs {
				if !seen[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddEdgeSequential(b *testing.B) {
	s := NewStore(0)
	for i := 0; i < b.N; i++ {
		s.AddEdge(VertexID(i%100000), VertexID((i*7)%100000), 1, 0)
	}
}

func BenchmarkNeighborsHighDegree(b *testing.B) {
	s := NewStore(0)
	for i := VertexID(1); i <= 10000; i++ {
		s.AddEdge(0, i, 1, 0)
	}
	slot, _ := s.SlotOf(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		s.Neighbors(slot, func(VertexID, Weight) bool { cnt++; return true })
	}
}
