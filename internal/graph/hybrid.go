package graph

import "sort"

// Hybrid CSR-delta storage tier (the RisGraph/DegAwareRHH idea): each
// vertex's cold edge bulk lives in an immutable, Nbr-sorted segment —
// a per-vertex CSR row — while recent arrivals accumulate in the existing
// small-slice/Robin-Hood delta. Compaction merges the delta into a fresh
// segment; it never pauses ingestion because the owning rank runs it as a
// chore between events, on its own shard only (shared-nothing, zero
// locking).
//
// Segment immutability is the load-bearing contract: once a segment array
// has escaped by reference (Segment()), the store never writes to it again
// — weight merges and deletes clone it (see AddEdge/DeleteEdge and the
// segShared bitmap) — and every compacted segment is allocated with
// len == cap, so an append through an aliased slice header must
// reallocate. That is exactly what lets a compacted segment be handed to
// the serve plane by reference (serve.Publisher.SegmentCompacted) instead
// of re-copied, and why concurrent readers of published segments are safe
// under the race detector. Segments that never escaped are private and
// merge weight/seq updates in place (duplicate-heavy streams would
// otherwise clone O(degree) per duplicate on hub vertices).

// DefaultCompactCap is the default delta size that queues a vertex for
// compaction. It matches DefaultSmallCap so that, in steady state, a
// vertex's delta is compacted around the point it would otherwise promote
// to the hash-table representation — scans stay in flat arrays.
const DefaultCompactCap = 16

// EnableHybrid switches the store into hybrid CSR-delta mode. Call before
// any edges are inserted. compactCap <= 0 selects DefaultCompactCap.
func (s *Store) EnableHybrid(compactCap int) {
	s.hybrid = true
	s.SetCompactCap(compactCap)
}

// HybridEnabled reports whether the store runs the hybrid tier.
func (s *Store) HybridEnabled() bool { return s.hybrid }

// SetCompactCap adjusts the compaction threshold (n <= 0 selects the
// default). Owner-goroutine only, like every store mutation; the auto-tune
// controller uses it to trade compaction churn against scan locality.
func (s *Store) SetCompactCap(n int) {
	if n <= 0 {
		n = DefaultCompactCap
	}
	s.compactCap = n
}

// CompactCap returns the current compaction threshold.
func (s *Store) CompactCap() int { return s.compactCap }

// maybeQueueCompact enqueues slot for compaction when its delta is both
// over the absolute threshold and at least a quarter of the segment —
// the geometric condition bounds total compaction copy work at O(degree)
// amortized constant per edge, like vector doubling.
func (s *Store) maybeQueueCompact(slot Slot, a *adjacency) {
	if !s.hybrid {
		return
	}
	if dn := a.deltaLen(); dn >= s.compactCap && dn*4 >= len(a.seg) {
		s.queueCompact(slot)
	}
}

// queueCompact appends slot to the FIFO compaction queue unless it is
// already pending (bitmap-deduplicated).
func (s *Store) queueCompact(slot Slot) {
	w := int(slot) >> 6
	bit := uint64(1) << (uint(slot) & 63)
	for len(s.pendingBit) <= w {
		s.pendingBit = append(s.pendingBit, 0)
	}
	if s.pendingBit[w]&bit != 0 {
		return
	}
	s.pendingBit[w] |= bit
	s.pending = append(s.pending, slot)
}

// PendingCompactions counts slots queued for compaction.
func (s *Store) PendingCompactions() int { return len(s.pending) - s.pendHead }

// PeekCompact returns the slot CompactNext would pop, without popping.
func (s *Store) PeekCompact() (Slot, bool) {
	if s.pendHead >= len(s.pending) {
		return NoSlot, false
	}
	return s.pending[s.pendHead], true
}

// CompactNext pops the oldest queued slot and compacts it. compacted is
// false when the slot's delta emptied between queueing and now (deletes
// can do that); ok is false when the queue is empty.
func (s *Store) CompactNext() (slot Slot, compacted, ok bool) {
	if s.pendHead >= len(s.pending) {
		return NoSlot, false, false
	}
	slot = s.pending[s.pendHead]
	s.pendHead++
	if s.pendHead == len(s.pending) {
		s.pending = s.pending[:0]
		s.pendHead = 0
	}
	s.pendingBit[int(slot)>>6] &^= uint64(1) << (uint(slot) & 63)
	return slot, s.CompactSlot(slot), true
}

// CompactSlot merges the vertex's delta into its immutable segment,
// reporting whether any entries moved. The merged array is freshly
// allocated with len == cap (see the aliasing contract above); the old
// segment array is left untouched for any published reference. Weights and
// Seq tags carry over bit-exact, so NeighborsBefore and the weight-policy
// invariants are tier-independent — only iteration order changes, which
// REMO commutativity makes irrelevant (DESIGN.md "Hybrid storage tier").
func (s *Store) CompactSlot(slot Slot) bool {
	a := &s.adj[slot]
	dn := a.deltaLen()
	if dn == 0 {
		return false
	}
	delta := make([]HalfEdge, 0, dn)
	if a.large != nil {
		a.large.Range(func(k uint64, p uint64) bool {
			w, q := unpackWS(p)
			delta = append(delta, HalfEdge{Nbr: VertexID(k), W: w, Seq: q})
			return true
		})
	} else {
		delta = append(delta, a.small...)
	}
	sort.Slice(delta, func(i, j int) bool { return delta[i].Nbr < delta[j].Nbr })
	merged := make([]HalfEdge, 0, len(a.seg)+len(delta))
	i, j := 0, 0
	for i < len(a.seg) && j < len(delta) {
		// The tiers are disjoint by construction (AddEdge checks the
		// segment first), so equal keys cannot occur; if the invariant ever
		// broke, the duplicate entry would surface in the differential
		// tests as a degree mismatch rather than being silently merged.
		if a.seg[i].Nbr < delta[j].Nbr {
			merged = append(merged, a.seg[i])
			i++
		} else {
			merged = append(merged, delta[j])
			j++
		}
	}
	merged = append(merged, a.seg[i:]...)
	merged = append(merged, delta[j:]...)
	a.seg = merged
	a.small = nil
	a.large = nil
	s.clearSegShared(slot) // fresh array: no outstanding references
	s.compactions.Add(1)
	s.segEdges.Add(uint64(dn))
	return true
}

// CompactAll compacts every vertex's delta and clears the queue (tests and
// offline consolidation; the engine compacts incrementally via
// CompactNext).
func (s *Store) CompactAll() {
	for slot := range s.adj {
		s.CompactSlot(Slot(slot))
	}
	s.pending = s.pending[:0]
	s.pendHead = 0
	for i := range s.pendingBit {
		s.pendingBit[i] = 0
	}
}

// segSharedBit reports whether the slot's segment array has escaped by
// reference. Owner-goroutine only, like the rest of the queue state.
func (s *Store) segSharedBit(slot Slot) bool {
	w := int(slot) >> 6
	return w < len(s.segShared) && s.segShared[w]&(uint64(1)<<(uint(slot)&63)) != 0
}

func (s *Store) markSegShared(slot Slot) {
	w := int(slot) >> 6
	for len(s.segShared) <= w {
		s.segShared = append(s.segShared, 0)
	}
	s.segShared[w] |= uint64(1) << (uint(slot) & 63)
}

func (s *Store) clearSegShared(slot Slot) {
	if w := int(slot) >> 6; w < len(s.segShared) {
		s.segShared[w] &^= uint64(1) << (uint(slot) & 63)
	}
}

// Segment exposes the vertex's immutable compacted segment (nil if never
// compacted). Callers must treat it as read-only. Taking a reference marks
// the slot shared: from then on any store-side change to the segment
// clones the array first instead of mutating in place, which is what makes
// handing it to the serve plane by reference sound.
func (s *Store) Segment(slot Slot) []HalfEdge {
	seg := s.adj[slot].seg
	if seg != nil {
		s.markSegShared(slot)
	}
	return seg
}

// AdjEntries returns every half-edge of the vertex at slot — segment then
// delta — as full (Nbr, W, Seq) triples. Diagnostic accessor for tests and
// the sim driver's compaction-equivalence check; allocates per call.
func (s *Store) AdjEntries(slot Slot) []HalfEdge {
	a := &s.adj[slot]
	out := make([]HalfEdge, 0, a.degree())
	out = append(out, a.seg...)
	if a.large != nil {
		a.large.Range(func(k uint64, p uint64) bool {
			w, q := unpackWS(p)
			out = append(out, HalfEdge{Nbr: VertexID(k), W: w, Seq: q})
			return true
		})
	} else {
		out = append(out, a.small...)
	}
	return out
}

// HybridStats is a point-in-time snapshot of the hybrid tier's counters
// (all zero when the store is not hybrid, except DeltaScanned which still
// tallies pure-dynamic scan traffic).
type HybridStats struct {
	// Compactions counts completed delta->segment merges.
	Compactions uint64
	// SegmentEdges is the number of edges currently resident in compacted
	// segments (a gauge: compactions add, segment deletes subtract).
	SegmentEdges uint64
	// SegClones counts copy-on-write segment clones (weight merges and
	// deletes hitting segment-resident edges).
	SegClones uint64
	// SegScanned / DeltaScanned count adjacency entries iterated per tier
	// during Neighbors/NeighborsBefore walks. DeltaScanned/(Seg+Delta) is
	// the delta hit rate: the fraction of scan traffic still served by the
	// mutable tier (lower = better locality).
	SegScanned   uint64
	DeltaScanned uint64
}

// Hybrid reads the hybrid tier's counters; safe from any goroutine.
func (s *Store) Hybrid() HybridStats {
	return HybridStats{
		Compactions:  s.compactions.Load(),
		SegmentEdges: s.segEdges.Load(),
		SegClones:    s.segClones.Load(),
		SegScanned:   s.segScans.Load(),
		DeltaScanned: s.deltaScans.Load(),
	}
}

// DeltaHitRate is DeltaScanned over total scanned entries (0 when nothing
// was scanned).
func (h HybridStats) DeltaHitRate() float64 {
	total := h.SegScanned + h.DeltaScanned
	if total == 0 {
		return 0
	}
	return float64(h.DeltaScanned) / float64(total)
}
