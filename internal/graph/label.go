package graph

import "incregraph/internal/rhh"

// CCLabel is the component label a vertex initially assumes in connected-
// components analysis: a hash of its ID (Algorithm 6 of the paper labels
// vertices with hash(ID)), biased away from zero so it can never collide
// with the "unset" sentinel. Both the dynamic CC program and the static
// baseline use this function, so their results compare bit-for-bit.
func CCLabel(v VertexID) uint64 {
	h := rhh.Hash64(uint64(v))
	if h == 0 {
		return 1
	}
	return h
}
