// Package graph defines the core graph types and the dynamic, degree-aware
// adjacency store used by every engine rank.
//
// The store reproduces the design of DegAwareRHH (Iwabuchi et al., "Towards
// a distributed large-scale dynamic graph data store", GABB 2016), the
// structure the paper's prototype incorporates (§III-B): open-addressing
// Robin Hood hash tables for high-degree vertices, and a separate compact
// representation for low-degree vertices. Graph evolution is edge-centric
// (§II): edges appear between already-established vertices, so the store is
// optimized for one-edge-at-a-time insertion with no a-priori knowledge of
// the final topology.
package graph

// VertexID identifies a vertex globally. IDs are sparse: the store maps
// them to dense per-shard slots internally.
type VertexID uint64

// Weight is an edge weight (used by SSSP; ignored by BFS/CC/S-T).
type Weight uint32

// Slot is the dense index of a vertex within one rank's shard. Algorithms
// keep their per-vertex state in slot-indexed arrays, which restores the
// write locality the paper notes static CSR buffers enjoy (§V-B).
type Slot uint32

// NoSlot is returned when a vertex is not present in a shard.
const NoSlot = ^Slot(0)

// Edge is a weighted directed edge, the unit of topology evolution.
type Edge struct {
	Src VertexID
	Dst VertexID
	W   Weight
}

// EdgeEvent is a topology-change event on a stream. Streams carry ordered
// EdgeEvents; events on different streams have no relative order (§III-C).
type EdgeEvent struct {
	Edge
	// Delete marks a decremental event (§VI-B extension). The core
	// evaluation uses add-only streams.
	Delete bool
}

// HalfEdge is one adjacency entry: the neighbour, the edge weight, and the
// snapshot sequence number current when the edge was inserted. Versioned
// global-state collection (§III-D) uses Seq to hide edges added after a
// snapshot marker from the previous-version state.
type HalfEdge struct {
	Nbr VertexID
	W   Weight
	Seq uint32
}
