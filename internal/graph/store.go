package graph

import (
	"sync/atomic"

	"incregraph/internal/rhh"
)

// DefaultSmallCap is the degree threshold at which a vertex's adjacency is
// promoted from the compact inline slice to a Robin Hood hash table.
// Low-degree vertices (the vast majority under power-law distributions)
// stay in the compact form; high-degree vertices get O(1) duplicate checks
// and weight lookups from the hash table.
const DefaultSmallCap = 16

// packed adjacency value for the large (hash table) representation:
// weight in the low 32 bits, insertion sequence number in the high 32.
func packWS(w Weight, seq uint32) uint64 { return uint64(seq)<<32 | uint64(w) }
func unpackWS(p uint64) (Weight, uint32) { return Weight(p & 0xffffffff), uint32(p >> 32) }

// adjacency is a degree-aware edge set for a single vertex. In hybrid mode
// (see hybrid.go) the bulk of the edges live in seg — an immutable,
// Nbr-sorted array compacted from the mutable tier — and small/large hold
// only the delta that arrived since the last compaction. An edge lives in
// exactly one tier: AddEdge checks seg first, so a segment-resident
// neighbour is never re-inserted into the delta.
type adjacency struct {
	seg   []HalfEdge       // immutable compacted segment, sorted by Nbr; nil until compacted
	small []HalfEdge       // delta: used while delta degree < smallCap
	large *rhh.Map[uint64] // delta: nbr -> packed (weight, seq); nil until promoted
}

func (a *adjacency) degree() int { return len(a.seg) + a.deltaLen() }

// deltaLen is the mutable-tier entry count (the whole adjacency when the
// store is not hybrid or the vertex was never compacted).
func (a *adjacency) deltaLen() int {
	if a.large != nil {
		return a.large.Len()
	}
	return len(a.small)
}

// segFind returns the index of nbr in the Nbr-sorted segment, or -1.
func segFind(seg []HalfEdge, nbr VertexID) int {
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seg[mid].Nbr < nbr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(seg) && seg[lo].Nbr == nbr {
		return lo
	}
	return -1
}

// WeightPolicy decides how a re-inserted edge's weight merges with the
// stored one. REMO monotonicity constrains which attribute updates an
// algorithm can absorb (§II-B): SSSP tolerates only weight *decreases*
// (paths only get cheaper), widest-path only weight *increases* (paths
// only get wider). The policy is a property of the store because all
// programs hooked on one engine share one topology.
type WeightPolicy uint8

const (
	// WeightMin keeps the minimum weight seen (default; matches the
	// paper's SSSP "edge updates limited only to reducing edge weight").
	WeightMin WeightPolicy = iota
	// WeightMax keeps the maximum weight seen (monotone for widest-path).
	WeightMax
	// WeightFirst ignores re-inserted weights entirely.
	WeightFirst
)

// Store is one rank's shard of the dynamic graph: a vertex table mapping
// sparse VertexIDs to dense slots, plus per-slot degree-aware adjacency.
// It is not safe for concurrent use; each engine rank owns its Store
// exclusively (shared-nothing).
type Store struct {
	index    rhh.Map[Slot] // VertexID -> slot
	ids      []VertexID    // slot -> VertexID
	adj      []adjacency   // slot -> adjacency
	edges    uint64        // directed half-edge count stored in this shard
	smallCap int
	policy   WeightPolicy

	promotions uint64 // number of small->large promotions (instrumentation)

	// Hybrid CSR-delta tier state (hybrid.go). pending/pendingBit form the
	// compaction queue: slots whose delta crossed the threshold, FIFO with a
	// bitmap de-duplicating entries; pendHead is the next queue index.
	hybrid     bool
	compactCap int
	pending    []Slot
	pendHead   int
	pendingBit []uint64

	// segShared marks slots whose segment array has been handed out by
	// reference (Segment()); only those need copy-on-write on a weight or
	// seq merge — private segments mutate in place, which matters under
	// duplicate-heavy streams (R-MAT hubs) where a clone is O(degree).
	// Deletes always clone: removal changes the array length, and the
	// serve-plane aliasing contract requires len == cap at handoff.
	segShared []uint64

	// Hybrid instrumentation. The store is single-writer (rank-owned), but
	// stats aggregation reads from arbitrary goroutines, so these are
	// atomics — each costs one uncontended add, and the scan tallies are
	// accumulated locally and added once per Neighbors call.
	compactions atomic.Uint64 // completed delta->segment merges
	segEdges    atomic.Uint64 // edges currently resident in segments (gauge)
	segClones   atomic.Uint64 // copy-on-write segment clones (merge/delete)
	segScans    atomic.Uint64 // adjacency entries iterated from segments
	deltaScans  atomic.Uint64 // adjacency entries iterated from the delta tier
}

// NewStore returns an empty shard with the WeightMin policy.
// smallCap <= 0 selects DefaultSmallCap.
func NewStore(smallCap int) *Store {
	if smallCap <= 0 {
		smallCap = DefaultSmallCap
	}
	return &Store{smallCap: smallCap}
}

// SetWeightPolicy selects the duplicate-weight merge rule. Call before any
// edges are inserted.
func (s *Store) SetWeightPolicy(p WeightPolicy) { s.policy = p }

// mergeWeight applies the policy to an existing weight given a re-inserted
// one, returning the weight to keep.
func (s *Store) mergeWeight(old, new Weight) Weight {
	switch s.policy {
	case WeightMax:
		if new > old {
			return new
		}
	case WeightFirst:
	default: // WeightMin
		if new < old {
			return new
		}
	}
	return old
}

// NumVertices returns the number of vertices present in this shard.
func (s *Store) NumVertices() int { return len(s.ids) }

// NumEdges returns the number of directed adjacency entries in this shard.
func (s *Store) NumEdges() uint64 { return s.edges }

// Promotions returns how many vertices have been promoted to the hash-table
// representation.
func (s *Store) Promotions() uint64 { return s.promotions }

// SlotOf returns the dense slot for v, or (NoSlot, false) if absent.
func (s *Store) SlotOf(v VertexID) (Slot, bool) {
	slot, ok := s.index.Get(uint64(v))
	if !ok {
		return NoSlot, false
	}
	return slot, true
}

// IDOf returns the VertexID stored at slot.
func (s *Store) IDOf(slot Slot) VertexID { return s.ids[slot] }

// IDs exposes the slot -> VertexID slice itself. The slice is append-only
// — slot i's id is written once and never reassigned — which is exactly
// the contract the MVCC read plane (internal/serve) relies on to share it
// across published segments without copying: a reader bounded by an older
// length never observes an index being written, and a growth reallocation
// leaves the old array intact. Callers must not mutate it.
func (s *Store) IDs() []VertexID { return s.ids }

// EnsureVertex returns the slot for v, creating the vertex if needed.
// The second result reports whether the vertex was newly created.
func (s *Store) EnsureVertex(v VertexID) (Slot, bool) {
	slot := Slot(len(s.ids))
	p, existed := s.index.GetOrPut(uint64(v), slot)
	if existed {
		return *p, false
	}
	s.ids = append(s.ids, v)
	s.adj = append(s.adj, adjacency{})
	return slot, true
}

// AddEdge inserts the directed edge src->dst with weight w, tagging it with
// the snapshot sequence seq. The source vertex is created if absent; the
// destination is NOT — in the distributed model the destination vertex
// lives in its owner's shard, and appears here only as a neighbour ID
// inside src's adjacency. If the edge already exists its weight merges per
// the store's WeightPolicy (default: keep the minimum — the paper's SSSP
// "edge updates limited only to reducing edge weight", §II-B) and the
// stored Seq is lowered to the smaller of the two: a parallel edge ingested
// before a snapshot marker belongs to the previous version even when a
// post-marker duplicate raced ahead of it, and previous-version propagation
// (NeighborsBefore) must be able to traverse it.
// Returns the source slot, whether the source vertex was created, and
// whether the adjacency entry is new.
func (s *Store) AddEdge(src, dst VertexID, w Weight, seq uint32) (srcSlot Slot, srcCreated, isNew bool) {
	srcSlot, srcCreated = s.EnsureVertex(src)
	a := &s.adj[srcSlot]
	if i := segFind(a.seg, dst); i >= 0 {
		// Segment-resident duplicate: merge the weight under the policy and
		// lower the stored seq. If the segment array has been handed out by
		// reference (serve-plane handoff at compaction) the change clones
		// first — the same copy-on-write discipline serve.Publisher applies
		// to its own mirror; a private segment mutates in place.
		merged := s.mergeWeight(a.seg[i].W, w)
		mseq := a.seg[i].Seq
		if seq < mseq {
			mseq = seq
		}
		if merged != a.seg[i].W || mseq != a.seg[i].Seq {
			if s.segSharedBit(srcSlot) {
				seg := make([]HalfEdge, len(a.seg))
				copy(seg, a.seg)
				a.seg = seg
				s.segClones.Add(1)
				s.clearSegShared(srcSlot)
			}
			a.seg[i].W = merged
			a.seg[i].Seq = mseq
		}
		return srcSlot, srcCreated, false
	}
	if a.large != nil {
		p, existed := a.large.GetOrPut(uint64(dst), packWS(w, seq))
		if existed {
			ew, eseq := unpackWS(*p)
			merged := s.mergeWeight(ew, w)
			if seq < eseq {
				eseq = seq
			}
			*p = packWS(merged, eseq)
			return srcSlot, srcCreated, false
		}
		s.edges++
		s.maybeQueueCompact(srcSlot, a)
		return srcSlot, srcCreated, true
	}
	for i := range a.small {
		if a.small[i].Nbr == dst {
			a.small[i].W = s.mergeWeight(a.small[i].W, w)
			if seq < a.small[i].Seq {
				a.small[i].Seq = seq
			}
			return srcSlot, srcCreated, false
		}
	}
	if len(a.small) >= s.smallCap {
		// Promote the delta to the Robin Hood representation.
		m := &rhh.Map[uint64]{}
		m.Reserve(len(a.small) * 2)
		for _, he := range a.small {
			m.Put(uint64(he.Nbr), packWS(he.W, he.Seq))
		}
		m.Put(uint64(dst), packWS(w, seq))
		a.small = nil
		a.large = m
		s.promotions++
		s.edges++
		s.maybeQueueCompact(srcSlot, a)
		return srcSlot, srcCreated, true
	}
	a.small = append(a.small, HalfEdge{Nbr: dst, W: w, Seq: seq})
	s.edges++
	s.maybeQueueCompact(srcSlot, a)
	return srcSlot, srcCreated, true
}

// DeleteEdge removes the directed edge src->dst, reporting whether it was
// present. Vertices are never removed (vertex deletion is a set of edge
// deletions in the paper's model).
func (s *Store) DeleteEdge(src, dst VertexID) bool {
	srcSlot, ok := s.SlotOf(src)
	if !ok {
		return false
	}
	a := &s.adj[srcSlot]
	if i := segFind(a.seg, dst); i >= 0 {
		// Copy-on-write removal: published references keep the old array.
		// Always cloned, shared or not — removal changes the length, and
		// the next handoff needs a fresh len == cap array anyway.
		if len(a.seg) == 1 {
			a.seg = nil
		} else {
			seg := make([]HalfEdge, 0, len(a.seg)-1)
			seg = append(seg, a.seg[:i]...)
			seg = append(seg, a.seg[i+1:]...)
			a.seg = seg
		}
		s.segClones.Add(1)
		s.segEdges.Add(^uint64(0))
		s.clearSegShared(srcSlot)
		s.edges--
		return true
	}
	if a.large != nil {
		if a.large.Delete(uint64(dst)) {
			s.edges--
			return true
		}
		return false
	}
	for i := range a.small {
		if a.small[i].Nbr == dst {
			last := len(a.small) - 1
			a.small[i] = a.small[last]
			a.small = a.small[:last]
			s.edges--
			return true
		}
	}
	return false
}

// Degree returns the out-degree of the vertex at slot.
func (s *Store) Degree(slot Slot) int { return s.adj[slot].degree() }

// HasEdge reports whether the directed edge src->dst exists.
func (s *Store) HasEdge(src, dst VertexID) bool {
	slot, ok := s.SlotOf(src)
	if !ok {
		return false
	}
	_, ok = s.EdgeWeight(slot, dst)
	return ok
}

// EdgeWeight returns the weight of the edge from the vertex at slot to nbr.
func (s *Store) EdgeWeight(slot Slot, nbr VertexID) (Weight, bool) {
	a := &s.adj[slot]
	if i := segFind(a.seg, nbr); i >= 0 {
		return a.seg[i].W, true
	}
	if a.large != nil {
		p, ok := a.large.Get(uint64(nbr))
		if !ok {
			return 0, false
		}
		w, _ := unpackWS(p)
		return w, true
	}
	for i := range a.small {
		if a.small[i].Nbr == nbr {
			return a.small[i].W, true
		}
	}
	return 0, false
}

// Neighbors calls fn for every out-neighbour of the vertex at slot: the
// dense compacted segment first (sequential, prefetch-friendly), then the
// delta tier. Iteration stops early if fn returns false. fn must not mutate
// the store. The per-tier scan tallies behind the delta-hit-rate gauge are
// accumulated locally and added once per call.
func (s *Store) Neighbors(slot Slot, fn func(nbr VertexID, w Weight) bool) {
	a := &s.adj[slot]
	for i := range a.seg {
		if !fn(a.seg[i].Nbr, a.seg[i].W) {
			s.segScans.Add(uint64(i + 1))
			return
		}
	}
	if len(a.seg) > 0 {
		s.segScans.Add(uint64(len(a.seg)))
	}
	if a.large != nil {
		n := 0
		a.large.Range(func(k uint64, p uint64) bool {
			n++
			w, _ := unpackWS(p)
			return fn(VertexID(k), w)
		})
		s.deltaScans.Add(uint64(n))
		return
	}
	for i := range a.small {
		if !fn(a.small[i].Nbr, a.small[i].W) {
			s.deltaScans.Add(uint64(i + 1))
			return
		}
	}
	if len(a.small) > 0 {
		s.deltaScans.Add(uint64(len(a.small)))
	}
}

// NeighborsBefore is Neighbors restricted to edges inserted before snapshot
// sequence seq. Previous-version snapshot propagation uses it so that state
// belonging to a snapshot never traverses edges added after the marker.
// Compaction preserves each half-edge's Seq exactly, so the filter is
// tier-independent.
func (s *Store) NeighborsBefore(slot Slot, seq uint32, fn func(nbr VertexID, w Weight) bool) {
	a := &s.adj[slot]
	for i := range a.seg {
		if a.seg[i].Seq >= seq {
			continue
		}
		if !fn(a.seg[i].Nbr, a.seg[i].W) {
			s.segScans.Add(uint64(i + 1))
			return
		}
	}
	if len(a.seg) > 0 {
		s.segScans.Add(uint64(len(a.seg)))
	}
	if a.large != nil {
		n := 0
		a.large.Range(func(k uint64, p uint64) bool {
			n++
			w, eseq := unpackWS(p)
			if eseq >= seq {
				return true
			}
			return fn(VertexID(k), w)
		})
		s.deltaScans.Add(uint64(n))
		return
	}
	for i := range a.small {
		if a.small[i].Seq >= seq {
			continue
		}
		if !fn(a.small[i].Nbr, a.small[i].W) {
			s.deltaScans.Add(uint64(i + 1))
			return
		}
	}
	if len(a.small) > 0 {
		s.deltaScans.Add(uint64(len(a.small)))
	}
}

// ForEachVertex calls fn for every vertex in the shard in slot order.
// Iteration stops early if fn returns false.
func (s *Store) ForEachVertex(fn func(slot Slot, id VertexID) bool) {
	for i, id := range s.ids {
		if !fn(Slot(i), id) {
			return
		}
	}
}

// Stats summarizes the degree-aware layout of a shard.
type Stats struct {
	Vertices   int
	Edges      uint64
	Promoted   uint64 // vertices using the hash-table representation
	MaxDegree  int
	Singletons int // vertices with degree 0
}

// ComputeStats scans the shard and returns layout statistics.
func (s *Store) ComputeStats() Stats {
	st := Stats{Vertices: len(s.ids), Edges: s.edges, Promoted: s.promotions}
	for i := range s.adj {
		d := s.adj[i].degree()
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d == 0 {
			st.Singletons++
		}
	}
	return st
}
