package static

import (
	"math/rand"
	"testing"

	"incregraph/internal/csr"
	"incregraph/internal/gen"
	"incregraph/internal/graph"
)

func TestWidestPathKnown(t *testing.T) {
	// 0 -(5)- 1 -(3)- 2 and a narrow shortcut 0 -(1)- 2: the widest path
	// to 2 goes through 1 with bottleneck 3.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 5},
		{Src: 1, Dst: 2, W: 3},
		{Src: 0, Dst: 2, W: 1},
	}
	g := csr.Build(edges, true)
	width := WidestPath(g, 0)
	if width[0] != ^uint64(0) {
		t.Fatalf("source width = %d", width[0])
	}
	if width[1] != 5 || width[2] != 3 {
		t.Fatalf("widths = %v", width)
	}
}

func TestWidestPathUnreachable(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, W: 7}, {Src: 2, Dst: 3, W: 9}}
	g := csr.Build(edges, true)
	width := WidestPath(g, 0)
	if width[2] != 0 || width[3] != 0 {
		t.Fatalf("disconnected widths = %v", width)
	}
}

func TestWidestPathEmpty(t *testing.T) {
	g := csr.Build(nil, true)
	if got := WidestPath(g, 0); len(got) != 0 {
		t.Fatalf("empty = %v", got)
	}
	g2 := csr.Build(gen.Path(3), true)
	if got := WidestPath(g2, 99); got[0] != 0 {
		t.Fatal("out-of-range source should leave widths 0")
	}
}

// bruteWidest computes widest paths by fixpoint relaxation — an
// independent reference implementation.
func bruteWidest(t Topology, src graph.VertexID) []uint64 {
	n := int(t.MaxVertexID()) + 1
	width := make([]uint64, n)
	width[src] = ^uint64(0)
	for changed := true; changed; {
		changed = false
		t.ForEachVertex(func(v graph.VertexID) bool {
			if width[v] == 0 {
				return true
			}
			t.Neighbors(v, func(nb graph.VertexID, w graph.Weight) bool {
				cand := width[v]
				if uint64(w) < cand {
					cand = uint64(w)
				}
				if cand > width[nb] {
					width[nb] = cand
					changed = true
				}
				return true
			})
			return true
		})
	}
	return width
}

func TestWidestPathMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		edges := gen.ErdosRenyi(80, 400, 30, rng.Int63())
		g := csr.Build(edges, true)
		fast := WidestPath(g, 0)
		slow := bruteWidest(g, 0)
		for v := range fast {
			if fast[v] != slow[v] {
				t.Fatalf("trial %d vertex %d: heap=%d brute=%d", trial, v, fast[v], slow[v])
			}
		}
	}
}
