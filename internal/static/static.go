// Package static implements the classical, whole-graph algorithms the paper
// uses as baselines (§V-B, §V-C): level-synchronous BFS, Dijkstra and
// Bellman-Ford SSSP, union-find connected components, and multi-source S-T
// connectivity labelling. They run over any Topology — the static CSR graph
// or a paused dynamic graph ("any known static graph algorithm could be
// applied on the dynamic graph whose evolution is paused", §VI-A) — and
// their results are the ground truth every dynamic-algorithm test converges
// against.
//
// Value conventions match the dynamic REMO algorithms exactly so results
// compare bit-for-bit:
//   - BFS: source level 1, level = hops+1, Unreached if no path.
//   - SSSP: source cost 1, cost = 1 + sum of edge weights, Unreached.
//   - CC: label = min over the component of graph.CCLabel(vertexID)
//     (Algorithm 6 labels components by hashed vertex ID).
//   - Multi S-T: bitmask; bit i set iff reachable from sources[i].
package static

import (
	"container/heap"

	"incregraph/internal/graph"
)

// Unreached marks a vertex with no path from the source (or, for CC, a
// vertex ID not present in the topology).
const Unreached = ^uint64(0)

// Topology is the read-only adjacency view shared by the static CSR graph
// and the (paused) dynamic store.
type Topology interface {
	// NumVertices returns the number of vertices present.
	NumVertices() int
	// MaxVertexID returns the largest vertex ID; state arrays are indexed
	// by raw ID in [0, MaxVertexID].
	MaxVertexID() graph.VertexID
	// ForEachVertex visits every present vertex; stops early on false.
	ForEachVertex(fn func(v graph.VertexID) bool)
	// Neighbors visits the out-neighbours of v; stops early on false.
	Neighbors(v graph.VertexID, fn func(nbr graph.VertexID, w graph.Weight) bool)
}

// BFS returns the level of every vertex from src: src has level 1,
// neighbours level 2, and so on (the paper's convention, Algorithm 4).
// The result is indexed by raw vertex ID; unreachable or absent IDs hold
// Unreached.
func BFS(t Topology, src graph.VertexID) []uint64 {
	levels := newState(t)
	if int(src) >= len(levels) {
		return levels
	}
	levels[src] = 1
	frontier := []graph.VertexID{src}
	for level := uint64(2); len(frontier) > 0; level++ {
		var next []graph.VertexID
		for _, v := range frontier {
			t.Neighbors(v, func(n graph.VertexID, _ graph.Weight) bool {
				if levels[n] > level {
					levels[n] = level
					next = append(next, n)
				}
				return true
			})
		}
		frontier = next
	}
	return levels
}

// distItem is a priority-queue entry for Dijkstra.
type distItem struct {
	v    graph.VertexID
	dist uint64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra returns shortest-path costs from src with the paper's offset
// convention: cost(src) = 1, cost(v) = 1 + sum of edge weights on the
// minimal path. Unreachable IDs hold Unreached.
func Dijkstra(t Topology, src graph.VertexID) []uint64 {
	dist := newState(t)
	if int(src) >= len(dist) {
		return dist
	}
	dist[src] = 1
	h := &distHeap{{v: src, dist: 1}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		t.Neighbors(it.v, func(n graph.VertexID, w graph.Weight) bool {
			nd := it.dist + uint64(w)
			if nd < dist[n] {
				dist[n] = nd
				heap.Push(h, distItem{v: n, dist: nd})
			}
			return true
		})
	}
	return dist
}

// BellmanFord computes the same result as Dijkstra by relaxation to a
// fixpoint. It exists purely as an independent cross-check in tests.
func BellmanFord(t Topology, src graph.VertexID) []uint64 {
	dist := newState(t)
	if int(src) >= len(dist) {
		return dist
	}
	dist[src] = 1
	for changed := true; changed; {
		changed = false
		t.ForEachVertex(func(v graph.VertexID) bool {
			if dist[v] == Unreached {
				return true
			}
			d := dist[v]
			t.Neighbors(v, func(n graph.VertexID, w graph.Weight) bool {
				if nd := d + uint64(w); nd < dist[n] {
					dist[n] = nd
					changed = true
				}
				return true
			})
			return true
		})
	}
	return dist
}

// ConnectedComponents labels every present vertex with the minimum
// graph.CCLabel(id) in its (weakly) connected component. Pass an undirected
// topology (reverse edges materialized) for the weak-connectivity
// interpretation the paper's CC uses. Absent IDs hold Unreached.
func ConnectedComponents(t Topology) []uint64 {
	n := int(t.MaxVertexID()) + 1
	if t.NumVertices() == 0 {
		n = 0
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1 // -1: absent
	}
	t.ForEachVertex(func(v graph.VertexID) bool {
		parent[v] = int32(v)
		return true
	})
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b graph.VertexID) {
		ra, rb := find(int32(a)), find(int32(b))
		if ra != rb {
			parent[ra] = rb
		}
	}
	t.ForEachVertex(func(v graph.VertexID) bool {
		t.Neighbors(v, func(nb graph.VertexID, _ graph.Weight) bool {
			union(v, nb)
			return true
		})
		return true
	})
	// Min-hash per root, then broadcast.
	minHash := make(map[int32]uint64)
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = Unreached
	}
	t.ForEachVertex(func(v graph.VertexID) bool {
		r := find(int32(v))
		h := graph.CCLabel(v)
		if cur, ok := minHash[r]; !ok || h < cur {
			minHash[r] = h
		}
		return true
	})
	t.ForEachVertex(func(v graph.VertexID) bool {
		labels[v] = minHash[find(int32(v))]
		return true
	})
	return labels
}

// MultiST labels every vertex with a bitmask: bit i is set iff the vertex
// is reachable from sources[i]. At most 64 sources are supported (the
// paper's maximum, Fig. 7). Absent/unreachable IDs hold 0 except that each
// source always carries its own bit.
func MultiST(t Topology, sources []graph.VertexID) []uint64 {
	if len(sources) > 64 {
		panic("static: MultiST supports at most 64 sources")
	}
	n := int(t.MaxVertexID()) + 1
	if t.NumVertices() == 0 {
		n = 0
	}
	mask := make([]uint64, n)
	for i, src := range sources {
		if int(src) >= n {
			continue
		}
		bit := uint64(1) << uint(i)
		if mask[src]&bit != 0 {
			continue
		}
		mask[src] |= bit
		frontier := []graph.VertexID{src}
		for len(frontier) > 0 {
			var next []graph.VertexID
			for _, v := range frontier {
				t.Neighbors(v, func(nb graph.VertexID, _ graph.Weight) bool {
					if mask[nb]&bit == 0 {
						mask[nb] |= bit
						next = append(next, nb)
					}
					return true
				})
			}
			frontier = next
		}
	}
	return mask
}

// widthItem is a priority-queue entry for WidestPath.
type widthItem struct {
	v     graph.VertexID
	width uint64
}

type widthHeap []widthItem

func (h widthHeap) Len() int            { return len(h) }
func (h widthHeap) Less(i, j int) bool  { return h[i].width > h[j].width } // max-heap
func (h widthHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *widthHeap) Push(x interface{}) { *h = append(*h, x.(widthItem)) }
func (h *widthHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// WidestPath returns the maximum-bottleneck width from src to every
// vertex: the maximum over paths of the minimum edge weight on the path.
// The source has width ^uint64(0); unreachable IDs hold 0 — matching the
// dynamic Widest program's conventions so results compare bit-for-bit.
func WidestPath(t Topology, src graph.VertexID) []uint64 {
	n := int(t.MaxVertexID()) + 1
	if t.NumVertices() == 0 {
		n = 0
	}
	width := make([]uint64, n)
	if int(src) >= n {
		return width
	}
	width[src] = ^uint64(0)
	h := &widthHeap{{v: src, width: width[src]}}
	for h.Len() > 0 {
		it := heap.Pop(h).(widthItem)
		if it.width < width[it.v] {
			continue // stale
		}
		t.Neighbors(it.v, func(nb graph.VertexID, w graph.Weight) bool {
			cand := it.width
			if uint64(w) < cand {
				cand = uint64(w)
			}
			if cand > width[nb] {
				width[nb] = cand
				heap.Push(h, widthItem{v: nb, width: cand})
			}
			return true
		})
	}
	return width
}

// Degrees returns the out-degree of every vertex indexed by raw ID.
func Degrees(t Topology) []uint64 {
	n := int(t.MaxVertexID()) + 1
	if t.NumVertices() == 0 {
		n = 0
	}
	deg := make([]uint64, n)
	t.ForEachVertex(func(v graph.VertexID) bool {
		d := 0
		t.Neighbors(v, func(graph.VertexID, graph.Weight) bool { d++; return true })
		deg[v] = uint64(d)
		return true
	})
	return deg
}

func newState(t Topology) []uint64 {
	n := int(t.MaxVertexID()) + 1
	if t.NumVertices() == 0 {
		n = 0
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = Unreached
	}
	return s
}
