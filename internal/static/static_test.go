package static

import (
	"math/rand"
	"testing"

	"incregraph/internal/csr"
	"incregraph/internal/gen"
	"incregraph/internal/graph"
)

func TestBFSPath(t *testing.T) {
	g := csr.Build(gen.Path(5), false)
	levels := BFS(g, 0)
	for i := 0; i < 5; i++ {
		if levels[i] != uint64(i)+1 {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], i+1)
		}
	}
	// From the middle of a directed path, earlier vertices are unreachable.
	levels = BFS(g, 2)
	if levels[0] != Unreached || levels[1] != Unreached {
		t.Fatal("directed path should not reach backwards")
	}
	if levels[2] != 1 || levels[4] != 3 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestBFSStarAndCycle(t *testing.T) {
	star := csr.Build(gen.Star(6), false)
	levels := BFS(star, 0)
	if levels[0] != 1 {
		t.Fatal("source level != 1")
	}
	for i := 1; i < 6; i++ {
		if levels[i] != 2 {
			t.Fatalf("leaf %d level %d", i, levels[i])
		}
	}
	cyc := csr.Build(gen.Cycle(4), false)
	levels = BFS(cyc, 0)
	want := []uint64{1, 2, 3, 4}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("cycle levels = %v", levels)
		}
	}
}

func TestBFSUndirected(t *testing.T) {
	g := csr.Build(gen.Path(5), true)
	levels := BFS(g, 2)
	want := []uint64{3, 2, 1, 2, 3}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestBFSEmptyAndOutOfRange(t *testing.T) {
	g := csr.Build(nil, false)
	if got := BFS(g, 0); len(got) != 0 {
		t.Fatalf("BFS on empty graph returned %v", got)
	}
	g2 := csr.Build(gen.Path(3), false)
	if got := BFS(g2, 99); got[0] != Unreached {
		t.Fatal("out-of-range source should leave everything unreached")
	}
}

func TestDijkstraKnown(t *testing.T) {
	// 0 ->(1) 1 ->(1) 2, plus a heavy shortcut 0 ->(5) 2.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 0, Dst: 2, W: 5},
	}
	g := csr.Build(edges, false)
	dist := Dijkstra(g, 0)
	if dist[0] != 1 || dist[1] != 2 || dist[2] != 3 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestDijkstraEqualsBellmanFordRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		edges := gen.ErdosRenyi(200, 1500, 20, seed)
		g := csr.Build(edges, false)
		d1 := Dijkstra(g, 0)
		d2 := BellmanFord(g, 0)
		for v := range d1 {
			if d1[v] != d2[v] {
				t.Fatalf("seed %d: dist[%d] dijkstra=%d bellman-ford=%d", seed, v, d1[v], d2[v])
			}
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	// Two disjoint edges.
	edges := []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 2, Dst: 3, W: 1}}
	g := csr.Build(edges, false)
	dist := Dijkstra(g, 0)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatalf("dist = %v", dist)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Components {0,1,2} and {3,4}; vertex 5 isolated... but CSR's dense
	// space only spans touched IDs, so add a self-loop to include 5.
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 3, Dst: 4, W: 1},
		{Src: 5, Dst: 5, W: 1},
	}
	g := csr.Build(edges, true)
	labels := ConnectedComponents(g)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("component A split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Fatalf("component B split: %v", labels)
	}
	if labels[0] == labels[3] || labels[0] == labels[5] || labels[3] == labels[5] {
		t.Fatalf("components merged: %v", labels)
	}
	// Label is the min hash over the component.
	wantA := min3(graph.CCLabel(0), graph.CCLabel(1), graph.CCLabel(2))
	if labels[0] != wantA {
		t.Fatalf("label[0] = %d, want min-hash %d", labels[0], wantA)
	}
}

func min3(a, b, c uint64) uint64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func TestCCMatchesBFSReachability(t *testing.T) {
	// On an undirected graph, two vertices share a CC label iff BFS from
	// one reaches the other.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		edges := gen.ErdosRenyi(60, 50, 1, rng.Int63())
		g := csr.Build(edges, true)
		labels := ConnectedComponents(g)
		from0 := BFS(g, 0)
		for v := range labels {
			sameComp := labels[v] == labels[0]
			reached := from0[v] != Unreached
			if sameComp != reached {
				t.Fatalf("trial %d vertex %d: sameComp=%v reached=%v", trial, v, sameComp, reached)
			}
		}
	}
}

func TestMultiST(t *testing.T) {
	// 0 -> 1 -> 2   3 -> 2
	edges := []graph.Edge{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 3, Dst: 2, W: 1},
	}
	g := csr.Build(edges, false)
	mask := MultiST(g, []graph.VertexID{0, 3})
	if mask[0] != 0b01 || mask[1] != 0b01 || mask[3] != 0b10 {
		t.Fatalf("mask = %b", mask)
	}
	if mask[2] != 0b11 {
		t.Fatalf("vertex 2 should see both sources, mask = %b", mask[2])
	}
}

func TestMultiSTDuplicateSources(t *testing.T) {
	g := csr.Build(gen.Path(3), false)
	mask := MultiST(g, []graph.VertexID{0, 0})
	if mask[2] != 0b11 {
		t.Fatalf("duplicate sources should both label: %b", mask[2])
	}
}

func TestMultiSTTooManySources(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with >64 sources")
		}
	}()
	MultiST(csr.Build(gen.Path(3), false), make([]graph.VertexID, 65))
}

func TestDegrees(t *testing.T) {
	g := csr.Build(gen.Star(5), false)
	deg := Degrees(g)
	if deg[0] != 4 {
		t.Fatalf("deg[0] = %d", deg[0])
	}
	for i := 1; i < 5; i++ {
		if deg[i] != 0 {
			t.Fatalf("leaf degree %d", deg[i])
		}
	}
}

func BenchmarkStaticBFS(b *testing.B) {
	edges := gen.ErdosRenyi(1<<16, 1<<19, 1, 1)
	g := csr.Build(edges, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}
