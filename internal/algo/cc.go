package algo

import (
	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// CC is the incremental Connected Components of Algorithm 6: label
// propagation where every vertex initially assumes the hashed label of its
// own ID (graph.CCLabel) and the minimum label in a component dominates.
// The monotonically evolving state of §II-B: a vertex's label only ever
// decreases, reaching the component-wide minimum. No Init is required —
// "the CC algorithm does not require an initiating vertex" (§IV).
//
// CC requires the engine's undirected mode (component connectivity is a
// symmetric relation).
type CC struct{}

// Name implements core.Named.
func (CC) Name() string { return "cc" }

// Init is not used by CC; labelling happens on edge addition.
func (CC) Init(ctx *core.Ctx) {}

// label returns the vertex's effective label, assuming self-domination if
// no event has labelled it yet.
func ccValue(ctx *core.Ctx) uint64 {
	if v := ctx.Value(); v != core.Unset {
		return v
	}
	v := graph.CCLabel(ctx.Vertex())
	ctx.SetValue(v)
	return v
}

// OnAdd labels a new vertex with its own hash (Algorithm 6: "if we are a
// new vertex, label us").
func (CC) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	ccValue(ctx)
}

// OnReverseAdd labels a new vertex, then applies the update step against
// the first endpoint's label.
func (c CC) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	ccValue(ctx)
	c.OnUpdate(ctx, nbr, nbrVal, w)
}

// OnUpdate merges component labels: the smaller label wins and floods; a
// vertex holding a smaller label notifies the visitor back.
func (CC) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {
	cur := ccValue(ctx)
	if fromVal == core.Unset {
		// The visitor carried no label (directed-mode edge case): offer ours.
		ctx.UpdateNbr(from, cur)
		return
	}
	switch {
	case cur < fromVal:
		// Our component dominates: notify back the visitor.
		ctx.UpdateNbr(from, cur)
	case cur > fromVal:
		// Their component dominates: adopt and flood.
		ctx.SetValue(fromVal)
		ctx.UpdateNbrs(fromVal)
	}
}

// Combine implements core.Combiner: the smaller component label subsumes
// the larger (Unset means "no label carried" and any real label wins).
func (CC) Combine(old, new uint64) uint64 { return combineMin(old, new) }

// WitnessLanes implements core.WitnessProgram: the label is one scalar.
func (CC) WitnessLanes() int { return 1 }

// ChangedLanes reports label progress. The Unset→self-label instantiation
// inside ccValue counts as a change and attributes a witness to the
// visiting neighbour; that is conservatively safe — Reseed restores the
// identical self-label, so the spurious invalidation is a no-op beyond the
// cascade probe.
func (CC) ChangedLanes(before, after uint64) uint64 {
	if before != after {
		return 1
	}
	return 0
}

// Reseed restores self-domination: the vertex re-assumes its own hashed
// label and re-learns the component minimum from the intact frontier.
func (CC) Reseed(ctx *core.Ctx, lanes uint64) {
	ctx.SetValue(graph.CCLabel(ctx.Vertex()))
}
