package algo

import (
	"sync/atomic"

	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// GenBFS is the generational Breadth First Search sketched in §VI-B: BFS
// that additionally tolerates edge deletions. Deletions can increase
// distances, which breaks plain BFS monotonicity; the paper's fix is
// "state generations": the monotone state is ordered first by generation
// and only second by level, so moving to a new generation — even with a
// worse level — is a strictly "more minimal" total state.
//
// A deletion that may invalidate a vertex's level bumps that vertex into a
// fresh generation with an unknown level; the new generation floods the
// affected component (each vertex adopts a newer generation exactly once),
// and within the newest generation levels re-converge by ordinary
// recursive BFS from the source. The paper concedes this "may have a high
// overhead" per delete and positions it as a correct starting point; this
// implementation keeps the same contract. Cheap special cases the paper
// calls out are honoured: deleting an edge at a source or at a vertex with
// no known level triggers no cascade.
//
// State packing (64-bit value): bit 63 = "is source", bits 62..40 =
// generation, bits 39..0 = level (0 means unknown/infinite; real levels
// start at 1).
//
// Fresh generation numbers come from one shared atomic counter per
// program instance. This is the single deviation from the engine's
// shared-nothing discipline: it is touched only on delete events, and a
// fully distributed alternative (lexicographic (vertexID, local counter)
// generations) would trade that for extra state exchange. The paper leaves
// decremental support as future work; this keeps the reproduction simple
// and correct.
type GenBFS struct {
	gen atomic.Uint64
}

// NewGenBFS returns a delete-tolerant BFS program.
func NewGenBFS() *GenBFS { return &GenBFS{} }

// Name implements core.Named.
func (*GenBFS) Name() string { return "genbfs" }

const (
	genSrcBit   = uint64(1) << 63
	genShift    = 40
	genMask     = (uint64(1)<<23 - 1) << genShift
	genLvlMask  = uint64(1)<<genShift - 1
	genInfLevel = uint64(0)
)

func genPack(src bool, gen, lvl uint64) uint64 {
	v := gen<<genShift&genMask | lvl&genLvlMask
	if src {
		v |= genSrcBit
	}
	return v
}

func genUnpack(v uint64) (src bool, gen, lvl uint64) {
	return v&genSrcBit != 0, (v & genMask) >> genShift, v & genLvlMask
}

// GenLevel extracts the level from a GenBFS state value, mapping "unknown"
// to core.Infinity so results compare directly with plain BFS levels.
func GenLevel(v uint64) uint64 {
	_, _, lvl := genUnpack(v)
	if lvl == genInfLevel {
		return core.Infinity
	}
	return lvl
}

// Init makes the visited vertex the traversal source: level 1 in its
// current generation, flagged so it re-seeds every future generation.
func (g *GenBFS) Init(ctx *core.Ctx) {
	_, gen, _ := genUnpack(ctx.Value())
	v := genPack(true, gen, 1)
	ctx.SetValue(v)
	ctx.UpdateNbrs(v)
}

// OnAdd needs no work: the Unset value already encodes (gen 0, unknown).
func (g *GenBFS) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {}

// OnReverseAdd applies the update step.
func (g *GenBFS) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	g.OnUpdate(ctx, nbr, nbrVal, w)
}

// OnUpdate merges generational states: a newer generation is adopted and
// flooded; within a generation, plain recursive BFS; a staler visitor is
// notified back.
func (g *GenBFS) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {
	// Updates must only be honoured over live edges. In an add-only world
	// every delivered update travels an existing edge, but with deletions
	// an in-flight message (or a notify-back reply to one) can arrive
	// after its edge died — adopting a level through it would resurrect a
	// path that no longer exists, permanently (nothing would invalidate it
	// again). Dropping the event is safe: the REMO propagation over the
	// live topology delivers everything needed for convergence.
	if _, ok := ctx.EdgeWeight(from); !ok {
		return
	}
	mySrc, myGen, myLvl := genUnpack(ctx.Value())
	_, fGen, fLvl := genUnpack(fromVal)
	switch {
	case fGen > myGen:
		// Newer generation: adopt it. The source re-seeds level 1; others
		// take the visitor's level + 1 if known, else stay unknown. Either
		// way, broadcast so the generation floods the component.
		lvl := genInfLevel
		if mySrc {
			lvl = 1
		} else if fLvl != genInfLevel {
			lvl = fLvl + 1
		}
		v := genPack(mySrc, fGen, lvl)
		ctx.SetValue(v)
		ctx.UpdateNbrs(v)
	case fGen < myGen:
		// Stale visitor: pull it forward.
		ctx.UpdateNbr(from, ctx.Value())
	default:
		// Same generation: the recursive BFS step.
		switch {
		case fLvl != genInfLevel && (myLvl == genInfLevel || myLvl > fLvl+1):
			v := genPack(mySrc, myGen, fLvl+1)
			ctx.SetValue(v)
			ctx.UpdateNbrs(v)
		case myLvl != genInfLevel && (fLvl == genInfLevel || fLvl > myLvl+1):
			ctx.UpdateNbr(from, ctx.Value())
		}
	}
}

// bump moves the visited vertex into a fresh generation with an unknown
// level and floods it. A source never bumps (its level cannot change);
// a vertex with no known level has nothing to invalidate.
func (g *GenBFS) bump(ctx *core.Ctx) {
	mySrc, _, myLvl := genUnpack(ctx.Value())
	if mySrc || myLvl == genInfLevel || myLvl == 1 {
		return
	}
	gen := g.gen.Add(1)
	v := genPack(false, gen, genInfLevel)
	ctx.SetValue(v)
	ctx.UpdateNbrs(v)
}

// OnDelete conservatively invalidates the edge source's level: without the
// other endpoint's state it cannot tell whether its shortest path used the
// deleted edge.
func (g *GenBFS) OnDelete(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	g.bump(ctx)
}

// OnReverseDelete invalidates the second endpoint likewise.
func (g *GenBFS) OnReverseDelete(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	g.bump(ctx)
}

var _ core.DeleteAware = (*GenBFS)(nil)
