package algo

import "incregraph/internal/core"

// Combiner hooks (core.Combiner): the engine may merge two buffered UPDATE
// values bound for the same vertex (same snapshot sequence and edge
// weight) into one. For the min-convergent programs the merge is "keep the
// lower value", with core.Unset normalized to "no information": an Unset
// fromVal means the sender had nothing to offer (BFS/SSSP) or no label yet
// (CC — whose OnUpdate treats Unset exactly like a worse label), so any
// real value must win the merge.
func combineMin(old, new uint64) uint64 {
	if normUnset(new) < normUnset(old) {
		return new
	}
	return old
}

func normUnset(v uint64) uint64 {
	if v == core.Unset {
		return core.Infinity
	}
	return v
}
