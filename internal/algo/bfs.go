// Package algo implements the paper's four incremental REMO algorithms
// (§IV) — Breadth First Search, Single Source Shortest Path, Connected
// Components, and Multi S-T Connectivity — plus the degree-tracking example
// of §II-A and the generational, delete-tolerant BFS sketched in §VI-B.
//
// Each is a vertex program over the core engine's event callbacks. All
// follow the REMO contract: the local state identified in §II-B evolves
// monotonically toward a bound (levels/costs/labels only decrease,
// connectivity bitmaps only grow), and a callback propagates only when it
// improves state — which is what makes fully asynchronous, concurrent
// processing converge to the deterministic answer.
package algo

import (
	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// norm maps the engine's Unset sentinel to Infinity for the distance
// algorithms: a vertex no event has touched is at unknown (infinite)
// distance (the paper's `if this.value == 0: this.value = MAX_INTEGER`).
func norm(v uint64) uint64 {
	if v == core.Unset {
		return core.Infinity
	}
	return v
}

// BFS is the incremental Breadth First Search of Algorithm 4: level 1 at
// the source, minimum hop count + 1 elsewhere, maintained under edge
// insertions. Call Engine.InitVertex to choose the source (at any time).
//
// Directed selects directed propagation: values flow only along edge
// direction, and OnAdd pushes the source vertex's level across a new
// out-edge. In the default undirected mode the engine's REVERSE_ADD
// protocol delivers the equivalent information.
type BFS struct {
	Directed bool
}

// Name implements core.Named.
func (BFS) Name() string { return "bfs" }

// Init makes the visited vertex the traversal source.
func (b BFS) Init(ctx *core.Ctx) {
	ctx.SetValue(1)
	ctx.UpdateNbrs(1)
}

// OnAdd gives a brand-new vertex its "infinite" level; in directed mode it
// also pushes the current level across the new edge.
func (b BFS) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	if ctx.Value() == core.Unset {
		ctx.SetValue(core.Infinity)
		return
	}
	if b.Directed {
		if v := ctx.Value(); v != core.Infinity {
			ctx.UpdateNbr(nbr, v)
		}
	}
}

// OnReverseAdd initializes a new vertex, then treats the notification as an
// update from the first endpoint (Algorithm 4: "the rest of the logic is
// the same as update step").
func (b BFS) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	if ctx.Value() == core.Unset {
		ctx.SetValue(core.Infinity)
	}
	b.OnUpdate(ctx, nbr, nbrVal, w)
}

// OnUpdate is the recursive step: adopt a shorter level and propagate, or
// notify the visitor back when this vertex knows a shorter path (§II-B
// cases i-iii).
func (b BFS) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {
	cur := norm(ctx.Value())
	fv := norm(fromVal)
	switch {
	case fv != core.Infinity && cur > fv+1:
		// They offer a shorter path: adopt and propagate (case iii).
		ctx.SetValue(fv + 1)
		ctx.UpdateNbrs(fv + 1)
	case !b.Directed && cur != core.Infinity && (fv == core.Infinity || fv > cur+1):
		// We know a shorter path: notify back the visitor.
		ctx.UpdateNbr(from, cur)
	}
}

// Combine implements core.Combiner: of two same-weight level offers to one
// vertex, the lower subsumes the higher (Unset means "no path offered").
func (BFS) Combine(old, new uint64) uint64 { return combineMin(old, new) }

// WitnessLanes implements core.WitnessProgram: the level is one scalar.
func (BFS) WitnessLanes() int { return 1 }

// ChangedLanes reports real level progress. The Unset→Infinity
// initialization is not progress (both mean "no path"), so it records no
// witness.
func (BFS) ChangedLanes(before, after uint64) uint64 {
	if norm(before) != norm(after) {
		return 1
	}
	return 0
}

// Reseed restores "no path known": the engine re-learns the level from the
// INVALIDATE cascade's intact frontier.
func (BFS) Reseed(ctx *core.Ctx, lanes uint64) {
	ctx.SetValue(core.Infinity)
}
