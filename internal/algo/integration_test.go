package algo_test

import (
	"testing"

	"incregraph/internal/algo"
	"incregraph/internal/core"
	"incregraph/internal/csr"
	"incregraph/internal/gen"
	"incregraph/internal/graph"
	"incregraph/internal/static"
	"incregraph/internal/stream"
)

// These integration tests exercise every callback path of every program
// from within the algo package (the deeper randomized convergence matrix
// lives in internal/core's tests).

func run(t *testing.T, edges []graph.Edge, opts core.Options, inits []graph.VertexID, p core.Program) *core.Engine {
	t.Helper()
	opts.Undirected = true
	if opts.Ranks == 0 {
		opts.Ranks = 3
	}
	e := core.New(opts, p)
	for _, v := range inits {
		e.InitVertex(0, v)
	}
	if _, err := e.Run(stream.Split(gen.Shuffle(edges, 9), opts.Ranks)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBFSConverges(t *testing.T) {
	edges := gen.ErdosRenyi(120, 800, 1, 1)
	e := run(t, edges, core.Options{}, []graph.VertexID{0}, algo.BFS{})
	want := static.BFS(csr.Build(edges, true), 0)
	for _, p := range e.Collect(0) {
		if p.Val != want[p.ID] {
			t.Fatalf("vertex %d: %d vs %d", p.ID, p.Val, want[p.ID])
		}
	}
}

func TestSSSPConverges(t *testing.T) {
	edges := gen.ErdosRenyi(120, 800, 30, 2)
	// Unique weights per pair to avoid duplicate-policy bookkeeping here.
	seen := map[[2]graph.VertexID]bool{}
	var uniq []graph.Edge
	for _, e := range edges {
		k := [2]graph.VertexID{e.Src, e.Dst}
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, e)
		}
	}
	e := run(t, uniq, core.Options{}, []graph.VertexID{0}, algo.SSSP{})
	want := static.Dijkstra(csr.Build(uniq, true), 0)
	for _, p := range e.Collect(0) {
		if p.Val != want[p.ID] {
			t.Fatalf("vertex %d: %d vs %d", p.ID, p.Val, want[p.ID])
		}
	}
}

func TestCCConverges(t *testing.T) {
	edges := append(gen.ErdosRenyi(100, 60, 1, 3), gen.Cycle(12)...)
	e := run(t, edges, core.Options{}, nil, algo.CC{})
	want := static.ConnectedComponents(csr.Build(edges, true))
	for _, p := range e.Collect(0) {
		if p.Val != want[p.ID] {
			t.Fatalf("vertex %d: %d vs %d", p.ID, p.Val, want[p.ID])
		}
	}
}

func TestMultiSTConverges(t *testing.T) {
	edges := gen.ErdosRenyi(150, 400, 1, 4)
	sources := []graph.VertexID{0, 9, 33}
	st := algo.NewMultiST(sources)
	e := core.New(core.Options{Ranks: 3, Undirected: true}, st)
	for _, s := range sources {
		e.InitVertex(0, s)
	}
	if _, err := e.Run(stream.Split(edges, 3)); err != nil {
		t.Fatal(err)
	}
	want := static.MultiST(csr.Build(edges, true), sources)
	for _, p := range e.Collect(0) {
		if p.Val != want[p.ID] {
			t.Fatalf("vertex %d: %b vs %b", p.ID, p.Val, want[p.ID])
		}
	}
}

func TestWidestConverges(t *testing.T) {
	edges := gen.ErdosRenyi(100, 600, 25, 5)
	seen := map[[2]graph.VertexID]bool{}
	var uniq []graph.Edge
	for _, e := range edges {
		k := [2]graph.VertexID{e.Src, e.Dst}
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, e)
		}
	}
	e := run(t, uniq, core.Options{WeightPolicy: graph.WeightMax}, []graph.VertexID{0}, algo.Widest{})
	want := static.WidestPath(csr.Build(uniq, true), 0)
	for _, p := range e.Collect(0) {
		if p.Val != want[p.ID] {
			t.Fatalf("vertex %d: %d vs %d", p.ID, p.Val, want[p.ID])
		}
	}
}

func TestDegreeConverges(t *testing.T) {
	edges := gen.Star(40)
	e := run(t, edges, core.Options{}, nil, algo.Degree{})
	got := e.CollectMap(0)
	if got[0] != 39 {
		t.Fatalf("hub degree = %d", got[0])
	}
	for v := graph.VertexID(1); v < 40; v++ {
		if got[v] != 1 {
			t.Fatalf("leaf %d degree = %d", v, got[v])
		}
	}
}

func TestDegreeWithDeletes(t *testing.T) {
	events := []graph.EdgeEvent{
		{Edge: graph.Edge{Src: 0, Dst: 1, W: 1}},
		{Edge: graph.Edge{Src: 0, Dst: 2, W: 1}},
		{Edge: graph.Edge{Src: 0, Dst: 3, W: 1}},
		{Edge: graph.Edge{Src: 0, Dst: 2, W: 1}, Delete: true},
	}
	e := core.New(core.Options{Ranks: 2, Undirected: true}, algo.Degree{})
	if _, err := e.Run([]stream.Stream{stream.FromEvents(events)}); err != nil {
		t.Fatal(err)
	}
	got := e.CollectMap(0)
	if got[0] != 2 || got[2] != 0 || got[1] != 1 {
		t.Fatalf("degrees after delete = %v", got)
	}
}

func TestGenBFSInitAndDeletes(t *testing.T) {
	events := []graph.EdgeEvent{
		{Edge: graph.Edge{Src: 0, Dst: 1, W: 1}},
		{Edge: graph.Edge{Src: 1, Dst: 2, W: 1}},
		{Edge: graph.Edge{Src: 2, Dst: 3, W: 1}},
		{Edge: graph.Edge{Src: 0, Dst: 3, W: 1}},               // shortcut: 3 at level 2
		{Edge: graph.Edge{Src: 0, Dst: 3, W: 1}, Delete: true}, // cut it: 3 back to 4
	}
	e := core.New(core.Options{Ranks: 2, Undirected: true}, algo.NewGenBFS())
	e.InitVertex(0, 0)
	if _, err := e.Run([]stream.Stream{stream.FromEvents(events)}); err != nil {
		t.Fatal(err)
	}
	got := e.CollectMap(0)
	levels := map[graph.VertexID]uint64{}
	for v, raw := range got {
		levels[v] = algo.GenLevel(raw)
	}
	want := map[graph.VertexID]uint64{0: 1, 1: 2, 2: 3, 3: 4}
	for v, w := range want {
		if levels[v] != w {
			t.Fatalf("vertex %d level %d want %d (all: %v)", v, levels[v], w, levels)
		}
	}
}
