package algo

import (
	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// Widest is an incremental widest-path (maximum-bottleneck) algorithm — an
// additional REMO algorithm beyond the paper's four, demonstrating the
// §II-B recipe applied to a monotonically *increasing* state: each vertex
// stores the width of the widest path from the source (the maximum over
// paths of the minimum edge weight along the path). Adding an edge can
// only widen or preserve paths, state only grows, and it is bounded above
// by the source's width — a convex solution space, so asynchronous
// concurrent updates converge deterministically.
//
// The source (chosen via InitVertex) has width core.Infinity; Unset (0)
// means "no path yet". Applications: maximum-capacity routing, trust
// propagation, bandwidth-aware reachability.
type Widest struct {
	Directed bool
}

// Name implements core.Named.
func (Widest) Name() string { return "widest" }

// Init makes the visited vertex the source, with unbounded width.
func (wd Widest) Init(ctx *core.Ctx) {
	ctx.SetValue(core.Infinity)
	ctx.UpdateNbrs(core.Infinity)
}

// OnAdd pushes the current width across a new out-edge in directed mode;
// the undirected protocol handles it via OnReverseAdd.
func (wd Widest) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	if wd.Directed {
		if v := ctx.Value(); v != core.Unset {
			ctx.UpdateNbr(nbr, v)
		}
	}
}

// OnReverseAdd applies the update step against the first endpoint's width.
func (wd Widest) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	wd.OnUpdate(ctx, nbr, nbrVal, w)
}

// OnUpdate widens the vertex if the visitor offers a better bottleneck, or
// notifies the visitor back if this vertex can widen it.
func (wd Widest) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {
	cur := ctx.Value()
	// The bottleneck of extending the visitor's path across this edge.
	cand := fromVal
	if uint64(w) < cand {
		cand = uint64(w)
	}
	switch {
	case cand > cur:
		ctx.SetValue(cand)
		ctx.UpdateNbrs(cand)
	case !wd.Directed && cur != core.Unset:
		// Could we widen the visitor through this same edge?
		back := cur
		if uint64(w) < back {
			back = uint64(w)
		}
		if back > fromVal {
			ctx.UpdateNbr(from, cur)
		}
	}
}

// Combine implements core.Combiner: of two width offers across the same
// edge weight, the wider subsumes the narrower (Unset, zero, is the
// identity).
func (Widest) Combine(old, new uint64) uint64 {
	if new > old {
		return new
	}
	return old
}

// WitnessLanes implements core.WitnessProgram: the width is one scalar.
func (Widest) WitnessLanes() int { return 1 }

// ChangedLanes reports width progress.
func (Widest) ChangedLanes(before, after uint64) uint64 {
	if before != after {
		return 1
	}
	return 0
}

// Reseed restores "no path yet" (Unset).
func (Widest) Reseed(ctx *core.Ctx, lanes uint64) {
	ctx.SetValue(core.Unset)
}
