package algo

import (
	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// SSSP is the incremental Single Source Shortest Path of Algorithm 5:
// "almost identical code" to BFS, with the path cost being the sum of edge
// weights instead of the hop count. Source cost is 1 (the paper's offset
// convention); every other vertex converges to 1 + the minimum weight sum.
// Edge re-insertions may only lower a weight (the store enforces this),
// preserving convex monotonicity (§II-B).
type SSSP struct {
	Directed bool
}

// Name implements core.Named.
func (SSSP) Name() string { return "sssp" }

// Init makes the visited vertex the source.
func (s SSSP) Init(ctx *core.Ctx) {
	ctx.SetValue(1)
	ctx.UpdateNbrs(1)
}

// OnAdd initializes a new vertex to infinite cost; in directed mode it
// pushes the current cost across the new edge.
func (s SSSP) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	if ctx.Value() == core.Unset {
		ctx.SetValue(core.Infinity)
		return
	}
	if s.Directed {
		if v := ctx.Value(); v != core.Infinity {
			ctx.UpdateNbr(nbr, v)
		}
	}
}

// OnReverseAdd initializes a new vertex, then applies the update step.
func (s SSSP) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	if ctx.Value() == core.Unset {
		ctx.SetValue(core.Infinity)
	}
	s.OnUpdate(ctx, nbr, nbrVal, w)
}

// OnUpdate adopts a cheaper path and propagates, or notifies the visitor
// back when this vertex knows a cheaper one.
func (s SSSP) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {
	cur := norm(ctx.Value())
	fv := norm(fromVal)
	switch {
	case fv != core.Infinity && cur > fv+uint64(w):
		ctx.SetValue(fv + uint64(w))
		ctx.UpdateNbrs(fv + uint64(w))
	case !s.Directed && cur != core.Infinity && (fv == core.Infinity || fv > cur+uint64(w)):
		ctx.UpdateNbr(from, cur)
	}
}

// Combine implements core.Combiner: of two distance offers to one vertex
// across the same edge weight, the cheaper subsumes the costlier (Unset
// means "no path offered").
func (SSSP) Combine(old, new uint64) uint64 { return combineMin(old, new) }

// WitnessLanes implements core.WitnessProgram: the path cost is one scalar.
func (SSSP) WitnessLanes() int { return 1 }

// ChangedLanes reports real cost progress (Unset→Infinity initialization
// is not progress).
func (SSSP) ChangedLanes(before, after uint64) uint64 {
	if norm(before) != norm(after) {
		return 1
	}
	return 0
}

// Reseed restores "no path known".
func (SSSP) Reseed(ctx *core.Ctx, lanes uint64) {
	ctx.SetValue(core.Infinity)
}
