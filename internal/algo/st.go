package algo

import (
	"fmt"

	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// MultiST is the incremental Multi S-T Connectivity of Algorithm 7: each
// vertex maintains a bitmap of the sources it is connected to, and bitmaps
// only ever gain bits — the convex monotone state of §II-B ("the same
// argument can be extended to multi S-T connectivity by using a bitmap").
// Up to 64 independent sources are supported, matching the paper's largest
// configuration (Fig. 7).
//
// Construct with NewMultiST, then Engine.InitVertex each source (at any
// time) to start its flow.
type MultiST struct {
	sources map[graph.VertexID]int
	n       int
}

// NewMultiST builds the program for the given source set. Source i owns
// bitmap bit i.
func NewMultiST(sources []graph.VertexID) *MultiST {
	if len(sources) > 64 {
		panic(fmt.Sprintf("algo: MultiST supports at most 64 sources, got %d", len(sources)))
	}
	m := &MultiST{sources: make(map[graph.VertexID]int, len(sources)), n: len(sources)}
	for i, s := range sources {
		if _, dup := m.sources[s]; !dup {
			m.sources[s] = i
		}
	}
	return m
}

// Name implements core.Named.
func (*MultiST) Name() string { return "st" }

// Sources returns the number of sources.
func (m *MultiST) Sources() int { return m.n }

// SourceBit returns the bitmap bit index of source v, if v is a source.
func (m *MultiST) SourceBit(v graph.VertexID) (int, bool) {
	i, ok := m.sources[v]
	return i, ok
}

// Init begins a flow from the visited vertex: "this.value = this.value ∪
// this.ID" (Algorithm 7), expressed as setting the source's own bit.
func (m *MultiST) Init(ctx *core.Ctx) {
	i, ok := m.sources[ctx.Vertex()]
	if !ok {
		return
	}
	v := ctx.Value() | 1<<uint(i)
	ctx.SetValue(v)
	ctx.UpdateNbrs(v)
}

// OnAdd does nothing but wait (Algorithm 7).
func (m *MultiST) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {}

// OnReverseAdd applies the update step against the first endpoint's set.
func (m *MultiST) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	m.OnUpdate(ctx, nbr, nbrVal, w)
}

// OnUpdate exchanges connectivity sets: a superset notifies the visitor
// back; a subset (or a mix) adopts the union and broadcasts it.
func (m *MultiST) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {
	cur := ctx.Value()
	union := cur | fromVal
	switch {
	case cur == fromVal:
		// Identical sets: nothing to do.
	case union == cur:
		// We are a pure superset: notify back the visitor.
		ctx.UpdateNbr(from, cur)
	default:
		// We are a subset, or the sets mix: adopt the union and
		// broadcast to all neighbours (which includes the visitor).
		ctx.SetValue(union)
		ctx.UpdateNbrs(union)
	}
}

// Combine implements core.Combiner: connectivity bitmaps merge by union,
// which subsumes delivering each set separately.
func (*MultiST) Combine(old, new uint64) uint64 { return old | new }

// WitnessLanes implements core.WitnessProgram: each source bit is an
// independently-witnessed lane (a vertex may be connected to source 0
// through one edge and source 1 through another).
func (m *MultiST) WitnessLanes() int { return max(m.n, 1) }

// ChangedLanes reports the source bits the callback newly gained.
func (m *MultiST) ChangedLanes(before, after uint64) uint64 {
	return after &^ before
}

// Reseed drops the unsafe source bits; intact lanes keep their bits (and
// witnesses).
func (m *MultiST) Reseed(ctx *core.Ctx, lanes uint64) {
	ctx.SetValue(ctx.Value() &^ lanes)
}
