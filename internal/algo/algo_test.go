package algo

import (
	"testing"
	"testing/quick"

	"incregraph/internal/core"
	"incregraph/internal/graph"
)

func TestNames(t *testing.T) {
	cases := map[string]core.Program{
		"bfs":    BFS{},
		"sssp":   SSSP{},
		"cc":     CC{},
		"st":     NewMultiST(nil),
		"degree": Degree{},
		"genbfs": NewGenBFS(),
		"widest": Widest{},
	}
	for want, p := range cases {
		n, ok := p.(core.Named)
		if !ok {
			t.Fatalf("%s does not implement Named", want)
		}
		if n.Name() != want {
			t.Fatalf("Name = %q want %q", n.Name(), want)
		}
	}
}

func TestNorm(t *testing.T) {
	if norm(core.Unset) != core.Infinity {
		t.Fatal("norm(Unset) != Infinity")
	}
	if norm(5) != 5 {
		t.Fatal("norm(5) != 5")
	}
	if norm(core.Infinity) != core.Infinity {
		t.Fatal("norm(Infinity) != Infinity")
	}
}

func TestGenPackUnpack(t *testing.T) {
	cases := []struct {
		src      bool
		gen, lvl uint64
	}{
		{false, 0, 0},
		{true, 0, 1},
		{false, 1, 42},
		{true, (1 << 23) - 1, (1 << 40) - 1},
	}
	for _, c := range cases {
		v := genPack(c.src, c.gen, c.lvl)
		src, gen, lvl := genUnpack(v)
		if src != c.src || gen != c.gen || lvl != c.lvl {
			t.Fatalf("pack/unpack(%v,%d,%d) = (%v,%d,%d)", c.src, c.gen, c.lvl, src, gen, lvl)
		}
	}
	// Unset decodes as gen 0, unknown level, not source.
	if src, gen, lvl := genUnpack(core.Unset); src || gen != 0 || lvl != genInfLevel {
		t.Fatalf("Unset unpacks to (%v,%d,%d)", src, gen, lvl)
	}
}

func TestGenPackRoundTripQuick(t *testing.T) {
	f := func(src bool, gen, lvl uint64) bool {
		gen &= (1 << 23) - 1
		lvl &= (1 << 40) - 1
		s, g, l := genUnpack(genPack(src, gen, lvl))
		return s == src && g == gen && l == lvl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenLevel(t *testing.T) {
	if GenLevel(genPack(false, 7, 0)) != core.Infinity {
		t.Fatal("unknown level should map to Infinity")
	}
	if GenLevel(genPack(true, 3, 9)) != 9 {
		t.Fatal("GenLevel lost the level")
	}
	if GenLevel(core.Unset) != core.Infinity {
		t.Fatal("Unset should map to Infinity")
	}
}

func TestMultiSTConstruction(t *testing.T) {
	st := NewMultiST([]graph.VertexID{10, 20, 10})
	if st.Sources() != 3 {
		t.Fatalf("Sources = %d", st.Sources())
	}
	if bit, ok := st.SourceBit(10); !ok || bit != 0 {
		t.Fatalf("SourceBit(10) = %d,%v — first registration wins", bit, ok)
	}
	if bit, ok := st.SourceBit(20); !ok || bit != 1 {
		t.Fatalf("SourceBit(20) = %d,%v", bit, ok)
	}
	if _, ok := st.SourceBit(99); ok {
		t.Fatal("SourceBit(non-source) should be false")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 sources")
		}
	}()
	NewMultiST(make([]graph.VertexID, 65))
}

func TestDeleteAwareness(t *testing.T) {
	// Only Degree and GenBFS support decremental events.
	var deleteAware = map[string]bool{"degree": true, "genbfs": true}
	progs := []core.Program{BFS{}, SSSP{}, CC{}, NewMultiST(nil), Degree{}, NewGenBFS(), Widest{}}
	for _, p := range progs {
		name := p.(core.Named).Name()
		_, ok := p.(core.DeleteAware)
		if ok != deleteAware[name] {
			t.Fatalf("%s: DeleteAware = %v, want %v", name, ok, deleteAware[name])
		}
	}
}
