package algo

import (
	"incregraph/internal/core"
	"incregraph/internal/graph"
)

// Degree is the trivial event-centric query of §II-A: "implement a
// callback on edge insertion and deletion: if an edge is added, increment
// a counter tracking the vertex degree; if removed, decrement it". The
// vertex's local state is its current degree, so degree thresholds can
// drive "When" triggers ("enabling a user-defined callback if the degree
// exceeds a certain threshold").
type Degree struct{}

// Name implements core.Named.
func (Degree) Name() string { return "degree" }

// Init is unused.
func (Degree) Init(ctx *core.Ctx) {}

// OnAdd refreshes the degree counter after an out-edge insertion.
func (Degree) OnAdd(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	ctx.SetValue(uint64(ctx.Degree()))
}

// OnReverseAdd refreshes the degree counter after a reverse-edge insertion.
func (Degree) OnReverseAdd(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	ctx.SetValue(uint64(ctx.Degree()))
}

// OnUpdate is unused: degree tracking never propagates.
func (Degree) OnUpdate(ctx *core.Ctx, from graph.VertexID, fromVal uint64, w graph.Weight) {}

// OnDelete decrements on edge removal (§VI-B decremental events).
func (Degree) OnDelete(ctx *core.Ctx, nbr graph.VertexID, w graph.Weight) {
	ctx.SetValue(uint64(ctx.Degree()))
}

// OnReverseDelete decrements on reverse-edge removal.
func (Degree) OnReverseDelete(ctx *core.Ctx, nbr graph.VertexID, nbrVal uint64, w graph.Weight) {
	ctx.SetValue(uint64(ctx.Degree()))
}

var _ core.DeleteAware = Degree{}
