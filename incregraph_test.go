package incregraph_test

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"incregraph"
	"incregraph/internal/gen"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := incregraph.New(incregraph.Config{Ranks: 4}, incregraph.BFS())
	g.InitVertex(0, 0)
	live := incregraph.NewLiveStream()
	if err := g.Start(live); err != nil {
		t.Fatal(err)
	}
	for _, e := range gen.Path(100) {
		live.PushEdge(e)
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Ingested() != 99 || !g.Quiescent() {
		if time.Now().After(deadline) {
			t.Fatal("no quiescence")
		}
		time.Sleep(time.Millisecond)
	}
	if res := g.Query(0, 99); !res.Exists || res.Value != 100 {
		t.Fatalf("Query(99) = %+v", res)
	}
	snap := g.Snapshot(0)
	m := snap.AsMap()
	if m[50] != 51 {
		t.Fatalf("snapshot[50] = %d", m[50])
	}
	live.Close()
	stats := g.Wait()
	if stats.TopoEvents != 99 || stats.Vertices != 100 {
		t.Fatalf("stats = %+v", stats)
	}
	// Static algorithm over the finished dynamic topology.
	levels := incregraph.StaticBFS(g.Topology(), 0)
	if levels[99] != 100 {
		t.Fatalf("static BFS on dynamic topology: %d", levels[99])
	}
}

func TestFacadeMultipleAlgorithms(t *testing.T) {
	edges := gen.ErdosRenyi(100, 600, 10, 1)
	g := incregraph.New(incregraph.Config{Ranks: 3},
		incregraph.BFS(), incregraph.CC(), incregraph.SSSP(), incregraph.DegreeTracker())
	g.InitVertex(0, 0)
	g.InitVertex(2, 0)
	if _, err := g.Run(incregraph.SplitEdges(edges, 3)...); err != nil {
		t.Fatal(err)
	}
	topo := g.Topology()
	bfs := incregraph.StaticBFS(topo, 0)
	for _, p := range g.Collect(0) {
		if p.Val != bfs[p.ID] {
			t.Fatalf("bfs vertex %d: %d vs %d", p.ID, p.Val, bfs[p.ID])
		}
	}
	cc := incregraph.StaticCC(topo)
	for _, p := range g.Collect(1) {
		if p.Val != cc[p.ID] {
			t.Fatalf("cc vertex %d: %d vs %d", p.ID, p.Val, cc[p.ID])
		}
	}
	sssp := incregraph.StaticSSSP(topo, 0)
	for _, p := range g.Collect(2) {
		if p.Val != sssp[p.ID] {
			t.Fatalf("sssp vertex %d: %d vs %d", p.ID, p.Val, sssp[p.ID])
		}
	}
}

func TestFacadeTriggers(t *testing.T) {
	g := incregraph.New(incregraph.Config{Ranks: 2}, incregraph.MultiST([]incregraph.VertexID{0}))
	var hit atomic.Bool
	g.WhenVertex(0, 30, func(val uint64) bool { return val&1 != 0 }, func(uint64) { hit.Store(true) })
	g.InitVertex(0, 0)
	if _, err := g.Run(incregraph.StreamEdges(gen.Path(31))); err != nil {
		t.Fatal(err)
	}
	if !hit.Load() {
		t.Fatal("connectivity trigger never fired")
	}
}

func TestFacadeGenBFSDeletes(t *testing.T) {
	events := []incregraph.EdgeEvent{
		{Edge: incregraph.Edge{Src: 0, Dst: 1, W: 1}},
		{Edge: incregraph.Edge{Src: 1, Dst: 2, W: 1}},
		{Edge: incregraph.Edge{Src: 0, Dst: 2, W: 1}},
		{Edge: incregraph.Edge{Src: 0, Dst: 2, W: 1}, Delete: true},
	}
	p := incregraph.GenBFS()
	if !incregraph.DeleteAware(p) {
		t.Fatal("GenBFS should be delete-aware")
	}
	if incregraph.DeleteAware(incregraph.BFS()) {
		t.Fatal("plain BFS should not be delete-aware")
	}
	g := incregraph.New(incregraph.Config{Ranks: 2}, p)
	g.InitVertex(0, 0)
	if _, err := g.Run(incregraph.StreamEvents(events)); err != nil {
		t.Fatal(err)
	}
	m := g.CollectMap(0)
	if lvl := incregraph.GenBFSLevel(m[2]); lvl != 3 {
		t.Fatalf("vertex 2 level = %d after delete, want 3", lvl)
	}
}

func TestFacadeStreamFuncAndRateLimit(t *testing.T) {
	s := incregraph.StreamFunc(10, func(i uint64) incregraph.Edge {
		return incregraph.Edge{Src: incregraph.VertexID(i), Dst: incregraph.VertexID(i + 1), W: 1}
	})
	s = incregraph.RateLimit(s, 1e9)
	g := incregraph.New(incregraph.Config{Ranks: 1}, incregraph.CC())
	stats, err := g.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TopoEvents != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	// One path: every vertex shares a label, the minimum CCLabelOf.
	want := incregraph.CCLabelOf(0)
	for v := incregraph.VertexID(1); v <= 10; v++ {
		if l := incregraph.CCLabelOf(v); l < want {
			want = l
		}
	}
	for _, p := range g.Collect(0) {
		if p.Val != want {
			t.Fatalf("vertex %d label %d want %d", p.ID, p.Val, want)
		}
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	events := []incregraph.EdgeEvent{{Edge: incregraph.Edge{Src: 1, Dst: 2, W: 3}}}
	path := dir + "/x.bin"
	if err := incregraph.SaveEvents(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := incregraph.LoadEvents(path)
	if err != nil || len(got) != 1 || got[0] != events[0] {
		t.Fatalf("round trip: %v %v", got, err)
	}
}

func TestFacadeCheckpointResume(t *testing.T) {
	edges := gen.Path(30)
	g := incregraph.New(incregraph.Config{Ranks: 2}, incregraph.BFS())
	g.InitVertex(0, 0)
	if _, err := g.Run(incregraph.StreamEdges(edges[:15])); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := incregraph.LoadCheckpoint(&buf, incregraph.Config{}, incregraph.BFS())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Run(incregraph.StreamEdges(edges[15:])); err != nil {
		t.Fatal(err)
	}
	if lvl := g2.Query(0, 29).Value; lvl != 30 {
		t.Fatalf("resumed path end level = %d", lvl)
	}
	if _, err := incregraph.LoadCheckpoint(bytes.NewReader([]byte("junk")), incregraph.Config{}); err == nil {
		t.Fatal("junk checkpoint should fail")
	}
}

func TestFacadeSignalAndDrain(t *testing.T) {
	g := incregraph.New(incregraph.Config{Ranks: 2}, incregraph.DegreeTracker())
	live := incregraph.NewLiveStream()
	if err := g.Start(live); err != nil {
		t.Fatal(err)
	}
	for _, e := range gen.Star(20) {
		live.PushEdge(e)
	}
	g.Signal(0, 5, 99) // DegreeTracker is not SignalAware: safely ignored
	g.Drain(live)
	if deg := g.Query(0, 0).Value; deg != 19 {
		t.Fatalf("hub degree after Drain = %d", deg)
	}
	live.Close()
	stats := g.Wait()
	if len(stats.PerRank) != 2 || stats.EventSkew() < 1 {
		t.Fatalf("per-rank stats missing: %+v", stats.PerRank)
	}
}

func TestFacadeWidestPath(t *testing.T) {
	edges := []incregraph.Edge{
		{Src: 0, Dst: 1, W: 5},
		{Src: 1, Dst: 2, W: 3},
		{Src: 0, Dst: 2, W: 1},
	}
	g := incregraph.New(incregraph.Config{Ranks: 2, WeightPolicy: incregraph.KeepMaxWeight},
		incregraph.WidestPath())
	g.InitVertex(0, 0)
	if _, err := g.Run(incregraph.StreamEdges(edges)); err != nil {
		t.Fatal(err)
	}
	if w := g.Query(0, 2).Value; w != 3 {
		t.Fatalf("widest(2) = %d, want 3", w)
	}
	want := incregraph.StaticWidestPath(g.Topology(), 0)
	if want[2] != 3 {
		t.Fatalf("static widest = %v", want)
	}
}

func TestFacadeDirectedMode(t *testing.T) {
	g := incregraph.New(incregraph.Config{Ranks: 2, Directed: true}, incregraph.DirectedBFS())
	g.InitVertex(0, 0)
	if _, err := g.Run(incregraph.StreamEdges(gen.Path(5))); err != nil {
		t.Fatal(err)
	}
	if lvl := g.Query(0, 4).Value; lvl != 5 {
		t.Fatalf("directed path end = %d", lvl)
	}
	// Directed SSSP and widest variants construct fine too.
	_ = incregraph.DirectedSSSP()
	_ = incregraph.DirectedWidestPath()
}

// TestFacadeLifecycle drives the public lifecycle surface: the functional
// options constructor, Pause making Collect/Topology/WriteCheckpoint legal
// mid-run, deferred events on Resume, and Stop as the graceful end of a
// live run whose stream never closes.
func TestFacadeLifecycle(t *testing.T) {
	g := incregraph.NewGraph(
		[]incregraph.Program{incregraph.BFS(), incregraph.CC()},
		incregraph.WithRanks(3),
		incregraph.WithBatchSize(64),
	)
	g.InitVertex(0, 0)
	if g.State() != incregraph.StateIdle {
		t.Fatalf("fresh state = %v", g.State())
	}
	live := incregraph.NewLiveStream()
	if err := g.Start(live); err != nil {
		t.Fatal(err)
	}
	if g.State() != incregraph.StateRunning {
		t.Fatalf("running state = %v", g.State())
	}
	edges := gen.Path(120)
	for _, e := range edges {
		live.PushEdge(e)
	}
	g.Drain(live)

	if err := g.Pause(); err != nil {
		t.Fatal(err)
	}
	if g.State() != incregraph.StatePaused {
		t.Fatalf("paused state = %v", g.State())
	}
	// Mid-run reads that would panic on a running graph are legal now.
	if vals := g.Collect(0); len(vals) != 120 {
		t.Fatalf("paused Collect: %d vertices, want 120", len(vals))
	}
	if lv := incregraph.StaticBFS(g.Topology(), 0); lv[119] != 120 {
		t.Fatalf("static BFS over paused topology: %d", lv[119])
	}
	var ckpt bytes.Buffer
	if err := g.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// The checkpoint restores as a paused-run image with the stream offset.
	g2, err := incregraph.LoadCheckpoint(&ckpt, incregraph.Config{},
		incregraph.BFS(), incregraph.CC())
	if err != nil {
		t.Fatal(err)
	}
	meta := g2.CheckpointMeta()
	if !meta.Paused || meta.Ingested != uint64(len(edges)) {
		t.Fatalf("checkpoint meta = %+v, want Paused at offset %d", meta, len(edges))
	}
	if q := g2.Query(0, 119); q.Value != 120 {
		t.Fatalf("restored query = %+v", q)
	}

	if err := g.Resume(); err != nil {
		t.Fatal(err)
	}
	if g.State() != incregraph.StateRunning {
		t.Fatalf("resumed state = %v", g.State())
	}
	// Stop ends the live run without closing the stream.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if g.State() != incregraph.StateStopped {
		t.Fatalf("stopped state = %v", g.State())
	}
	g.Wait() // does not block after Stop
	if err := g.Pause(); err != incregraph.ErrStopped {
		t.Fatalf("Pause after Stop = %v, want ErrStopped", err)
	}
}

// TestFacadeDrainPrompt bounds the latency of Drain on an already-idle
// live stream: the condition-signalled wait must return without polling
// delays (the old implementation spun on runtime.Gosched).
func TestFacadeDrainPrompt(t *testing.T) {
	g := incregraph.NewGraph([]incregraph.Program{incregraph.CC()}, incregraph.WithRanks(2))
	live := incregraph.NewLiveStream()
	if err := g.Start(live); err != nil {
		t.Fatal(err)
	}
	for _, e := range gen.Cycle(400) {
		live.PushEdge(e)
	}
	g.Drain(live)
	if g.Ingested() != 400 || !g.Quiescent() {
		t.Fatalf("Drain returned early: ingested %d quiescent=%v", g.Ingested(), g.Quiescent())
	}
	start := time.Now()
	for i := 0; i < 100; i++ {
		g.Drain(live)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("100 idle Drains took %v", d)
	}
	live.Close()
	g.Wait()
}
